package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dynloop/internal/client"
	"dynloop/internal/expt"
	"dynloop/internal/grid"
	"dynloop/internal/spec"
	"dynloop/internal/store"
	"dynloop/internal/wire"
)

var testReq = wire.SweepRequest{
	Benchmarks: []string{"swim", "compress"},
	Policies:   []string{"str", "str3"},
	TUs:        []int{2, 4},
	Budget:     50_000,
}

func testCfg(req wire.SweepRequest) expt.Config {
	return expt.Config{Budget: req.Budget, Seed: req.Seed, Benchmarks: req.Benchmarks, BatchSize: req.BatchSize}
}

func testSpec(t *testing.T, req wire.SweepRequest) expt.SweepSpec {
	t.Helper()
	pols, err := expt.ParsePolicies(req.Policies)
	if err != nil {
		t.Fatal(err)
	}
	return expt.SweepSpec{Policies: pols, TUs: req.TUs}
}

// newTestDaemon starts a daemon over httptest and returns a client.
func newTestDaemon(t *testing.T, cfg Config) (*Server, *client.Client) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, client.New(hs.URL, hs.Client())
}

// TestRemoteSweepByteIdentical is the acceptance criterion: the remote
// path must render byte-identical output to the local path, at 1 and
// at 8 workers.
func TestRemoteSweepByteIdentical(t *testing.T) {
	ctx := context.Background()
	localCfg := testCfg(testReq)
	localCfg.Parallel = 1
	localRows, err := expt.Sweep(ctx, localCfg, testSpec(t, testReq))
	if err != nil {
		t.Fatal(err)
	}
	want := expt.RenderSweep(localRows)

	for _, workers := range []int{1, 8} {
		_, c := newTestDaemon(t, Config{Workers: workers})
		rows, err := c.Sweep(ctx, testReq)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := expt.RenderSweep(rows); got != want {
			t.Fatalf("workers=%d: remote render differs:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}

// TestDaemonSharesCellsAcrossClients: two clients asking overlapping
// grids compute the overlap once.
func TestDaemonSharesCellsAcrossClients(t *testing.T) {
	ctx := context.Background()
	s, c := newTestDaemon(t, Config{Workers: 4})
	if _, err := c.Sweep(ctx, testReq); err != nil {
		t.Fatal(err)
	}
	executed := s.Runner().Stats().Executed
	if _, err := c.Sweep(ctx, testReq); err != nil {
		t.Fatal(err)
	}
	st := s.Runner().Stats()
	if st.Executed != executed {
		t.Fatalf("identical second sweep executed %d new cells", st.Executed-executed)
	}
	if st.CacheHits == 0 {
		t.Fatalf("second sweep produced no cache hits: %+v", st)
	}
}

// TestDaemonStoreTier: a daemon restarted over the same store serves a
// repeat sweep from disk without executing anything.
func TestDaemonStoreTier(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, c1 := newTestDaemon(t, Config{Workers: 4, Store: st1})
	rows1, err := c1.Sweep(ctx, testReq)
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	s2, c2 := newTestDaemon(t, Config{Workers: 4, Store: st2})
	rows2, err := c2.Sweep(ctx, testReq)
	if err != nil {
		t.Fatal(err)
	}
	if expt.RenderSweep(rows1) != expt.RenderSweep(rows2) {
		t.Fatal("store-served sweep differs from computed sweep")
	}
	rs := s2.Runner().Stats()
	if rs.Executed != 0 || rs.DiskHits == 0 {
		t.Fatalf("restarted daemon recomputed cells: %+v", rs)
	}

	// The stats endpoint reports the disk tier.
	stats, err := c2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runner.DiskHits != rs.DiskHits || stats.Store == nil || stats.Store.Records == 0 {
		t.Fatalf("stats endpoint: %+v", stats)
	}
}

// TestCellQuery: a persisted cell is queryable by its full
// configuration key and decodes to the exact metrics the sweep row
// carried.
func TestCellQuery(t *testing.T) {
	ctx := context.Background()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	_, c := newTestDaemon(t, Config{Workers: 2, Store: st})
	rows, err := c.Sweep(ctx, testReq)
	if err != nil {
		t.Fatal(err)
	}
	keys := st.Keys()
	if len(keys) != len(rows) {
		t.Fatalf("store has %d keys for %d rows", len(keys), len(rows))
	}
	found := 0
	for _, key := range keys {
		v, err := c.Cell(ctx, key)
		if err != nil {
			t.Fatalf("Cell(%q): %v", key, err)
		}
		m, ok := v.(spec.Metrics)
		if !ok {
			t.Fatalf("Cell(%q) decoded to %T", key, v)
		}
		for _, r := range rows {
			if r.M == m {
				found++
				break
			}
		}
	}
	if found != len(keys) {
		t.Fatalf("only %d of %d cell queries matched a sweep row", found, len(keys))
	}
	if _, err := c.Cell(ctx, "no such key"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("absent key: %v", err)
	}
}

// TestEventsStream: an SSE subscriber sees the sweep's progress.
func TestEventsStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, c := newTestDaemon(t, Config{Workers: 2})

	var mu sync.Mutex
	kinds := map[string]int{}
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- c.Events(ctx, func(ev wire.Event) {
			mu.Lock()
			kinds[ev.Kind]++
			mu.Unlock()
		})
	}()
	// Give the subscription a moment to attach before generating events.
	time.Sleep(50 * time.Millisecond)
	if _, err := c.Sweep(ctx, testReq); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		done := kinds["done"]
		mu.Unlock()
		if done > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("no done events seen: %v", kinds)
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	if err := <-streamDone; err != nil {
		t.Fatalf("event stream: %v", err)
	}
}

// TestGracefulShutdown: cancelling the serve context stops the
// listener, ends event streams, and returns without error.
func TestGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := New(Config{Workers: 2})
	ready := make(chan string, 1)
	served := make(chan error, 1)
	go func() { served <- s.ListenAndServe(ctx, "127.0.0.1:0", ready, 5*time.Second) }()
	addr := <-ready
	c := client.New("http://"+addr, nil)
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}

	// An open SSE stream must not wedge shutdown.
	streamDone := make(chan error, 1)
	go func() { streamDone <- c.Events(context.Background(), func(wire.Event) {}) }()
	time.Sleep(50 * time.Millisecond)

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("ListenAndServe: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	select {
	case <-streamDone:
	case <-time.After(5 * time.Second):
		t.Fatal("event stream did not end on shutdown")
	}
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("daemon still serving after shutdown")
	}
}

// TestSweepValidation: bad requests fail fast with useful statuses.
func TestSweepValidation(t *testing.T) {
	ctx := context.Background()
	_, c := newTestDaemon(t, Config{Workers: 1, MaxCells: 4})
	cases := []wire.SweepRequest{
		{Benchmarks: []string{"nope"}, Budget: 1000},
		{Policies: []string{"warp-drive"}, Budget: 1000},
		{TUs: []int{-1}, Budget: 1000},
		{Budget: 1000}, // full default grid exceeds MaxCells=4
	}
	for i, req := range cases {
		if _, err := c.Sweep(ctx, req); err == nil {
			t.Errorf("case %d accepted: %+v", i, req)
		}
	}
}

// TestRemoteGridByteIdentical: a grid executed remotely — by registered
// name AND as an inline ad-hoc spec — renders byte-identically to the
// local path, at 1 and 8 workers.
func TestRemoteGridByteIdentical(t *testing.T) {
	ctx := context.Background()
	cfg := expt.Config{Budget: 60_000, Benchmarks: []string{"swim", "compress"}, Parallel: 1}

	adhoc := grid.Spec{
		Kind:     "spec",
		Seeds:    []uint64{1, 2},
		TUs:      []int{2, 4},
		Policies: []string{"str"},
	}
	localRes, err := grid.Run(ctx, cfg, adhoc)
	if err != nil {
		t.Fatal(err)
	}
	wantAdhoc, err := grid.RenderResult(localRes)
	if err != nil {
		t.Fatal(err)
	}
	namedEntry, ok := grid.Lookup("table2")
	if !ok {
		t.Fatal("table2 not registered")
	}
	namedRes, err := grid.Run(ctx, cfg, namedEntry.Spec)
	if err != nil {
		t.Fatal(err)
	}
	wantNamed, err := grid.RenderResult(namedRes)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		_, c := newTestDaemon(t, Config{Workers: workers})
		req := wire.GridRequest{Spec: &adhoc, Budget: cfg.Budget, Benchmarks: cfg.Benchmarks}
		values, err := c.Grid(ctx, req)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res, err := grid.ResultFrom(cfg, adhoc, values)
		if err != nil {
			t.Fatal(err)
		}
		got, err := grid.RenderResult(res)
		if err != nil || got != wantAdhoc {
			t.Fatalf("workers=%d: remote ad-hoc grid differs (%v):\n%s\nwant:\n%s", workers, err, got, wantAdhoc)
		}

		values, err = c.Grid(ctx, wire.GridRequest{Name: "table2", Budget: cfg.Budget, Benchmarks: cfg.Benchmarks})
		if err != nil {
			t.Fatalf("workers=%d named: %v", workers, err)
		}
		res, err = grid.ResultFrom(cfg, namedEntry.Spec, values)
		if err != nil {
			t.Fatal(err)
		}
		got, err = grid.RenderResult(res)
		if err != nil || got != wantNamed {
			t.Fatalf("workers=%d: remote named grid differs (%v):\n%s\nwant:\n%s", workers, err, got, wantNamed)
		}
	}
}

// TestGridsListingRoundTrip: the daemon's listing carries every
// registered spec, and a spec fetched from it resubmits inline to the
// same bytes as the named request — the full discover → fetch →
// execute loop.
func TestGridsListingRoundTrip(t *testing.T) {
	ctx := context.Background()
	_, c := newTestDaemon(t, Config{Workers: 4})
	infos, err := c.Grids(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(grid.Names()) {
		t.Fatalf("listing has %d grids, registry %d", len(infos), len(grid.Names()))
	}
	byName := map[string]wire.GridInfo{}
	for _, gi := range infos {
		byName[gi.Name] = gi
		if gi.Kind == "" || gi.Cells <= 0 {
			t.Fatalf("listing entry %+v incomplete", gi)
		}
	}
	gi, ok := byName["table1"]
	if !ok {
		t.Fatal("table1 missing from listing")
	}
	cfg := expt.Config{Budget: 60_000, Benchmarks: []string{"swim"}}
	named, err := c.Grid(ctx, wire.GridRequest{Name: "table1", Budget: cfg.Budget, Benchmarks: cfg.Benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	fetched := gi.Spec
	inline, err := c.Grid(ctx, wire.GridRequest{Spec: &fetched, Budget: cfg.Budget, Benchmarks: cfg.Benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	resA, err := grid.ResultFrom(cfg, gi.Spec, named)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := grid.ResultFrom(cfg, fetched, inline)
	if err != nil {
		t.Fatal(err)
	}
	a, errA := grid.RenderResult(resA)
	b, errB := grid.RenderResult(resB)
	if errA != nil || errB != nil || a != b || a == "" {
		t.Fatalf("listing round trip differs (%v %v):\n%s\nvs\n%s", errA, errB, a, b)
	}
}

// TestGridValidation: the daemon rejects malformed, oversized and
// unknown grid requests with errors, never panics.
func TestGridValidation(t *testing.T) {
	ctx := context.Background()
	_, c := newTestDaemon(t, Config{Workers: 1, MaxCells: 4})
	bad := []wire.GridRequest{
		{}, // neither name nor spec
		{Name: "nope"},
		{Spec: &grid.Spec{Kind: "bogus"}},
		{Spec: &grid.Spec{TUs: []int{-1}}},
		{Spec: &grid.Spec{Kind: "table1", Policies: []string{"str"}}},
		{Spec: &grid.Spec{}, Benchmarks: []string{"nope"}},
		{Name: "sweep", Budget: 1000}, // 360 cells > MaxCells=4
	}
	for i, req := range bad {
		if _, err := c.Grid(ctx, req); err == nil {
			t.Errorf("case %d accepted: %+v", i, req)
		}
	}
}
