package server

import (
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"dynloop/internal/obs"
	"dynloop/internal/runner"
)

// HTTP-layer metrics. Every route gets its own request counter and
// latency histogram series, registered once at package init so the
// per-request path is label-lookup-free: one map read at wrap time
// (not per request — instrument closes over the series), then pure
// atomic increments.
var (
	mHTTPInFlight = obs.NewGauge("dynloop_http_in_flight",
		"Requests currently being served.")
	mHTTPShed = obs.NewCounter("dynloop_http_shed_total",
		"Requests shed: oversized grids rejected, queue waits timed out (both 422 + Retry-After) and clients that gave up while queued for an inflight slot.")
	mWarmerCells = obs.NewCounter("dynloop_warmer_cells_total",
		"Grid cells precomputed by the background warmer (cache hits included).")
	mWarmerPauses = obs.NewCounter("dynloop_warmer_pauses_total",
		"Times the background warmer yielded to foreground load.")
)

// routes is the fixed endpoint set; per-endpoint series are registered
// for exactly these, keeping label cardinality bounded by construction.
var routes = []string{
	"/v1/sweep", "/v1/grid", "/v1/grids", "/v1/cell",
	"/v1/events", "/v1/stats", "/healthz", "/metrics",
}

type endpointSeries struct {
	reqs *obs.Counter
	lat  *obs.Histogram
}

var endpointMetrics = func() map[string]endpointSeries {
	m := make(map[string]endpointSeries, len(routes))
	for _, r := range routes {
		m[r] = endpointSeries{
			reqs: obs.NewCounter("dynloop_http_requests_total",
				"HTTP requests served, by endpoint.", "endpoint", r),
			lat: obs.NewHistogram("dynloop_http_request_seconds",
				"HTTP request latency in seconds, by endpoint.",
				obs.DefLatencyBuckets, "endpoint", r),
		}
	}
	return m
}()

// HTTPTotals sums the per-endpoint request counters and returns them
// with the shed count and the in-flight gauge, for /v1/stats.
func HTTPTotals() (requests, shed uint64, inFlight int64) {
	for _, es := range endpointMetrics {
		requests += es.reqs.Value()
	}
	return requests, mHTTPShed.Value(), int64(mHTTPInFlight.Value())
}

// reqSeq numbers requests for log correlation.
var reqSeq atomic.Uint64

// statusWriter records the response status for metrics and logs. It
// must implement http.Flusher: the SSE events handler streams through
// it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument wraps a handler with the route's metrics series and, when
// the server has a logger, a structured request log line. The logged
// tier counts are deltas of the shared runner's counters around the
// request — exact when requests run one at a time (the smoke tests'
// shape), advisory under concurrency.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	es := endpointMetrics[route]
	return func(w http.ResponseWriter, r *http.Request) {
		mHTTPInFlight.Add(1)
		defer mHTTPInFlight.Add(-1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		var before runner.Stats
		logged := s.cfg.Logger != nil
		var id uint64
		if logged {
			id = reqSeq.Add(1)
			before = s.runner.Stats()
		}
		h(sw, r)
		dur := time.Since(start)
		es.reqs.Inc()
		es.lat.Observe(dur.Seconds())
		if sw.status == http.StatusUnprocessableEntity {
			mHTTPShed.Inc()
		}
		if logged {
			after := s.runner.Stats()
			s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.Uint64("req", id),
				slog.String("endpoint", route),
				slog.Int("status", sw.status),
				slog.Duration("dur", dur),
				slog.String("cells", sw.Header().Get("X-Dynloop-Cells")),
				slog.Uint64("executed", after.Executed-before.Executed),
				slog.Uint64("cache_hits", after.CacheHits-before.CacheHits),
				slog.Uint64("disk_hits", after.DiskHits-before.DiskHits),
				slog.Uint64("replay_runs", after.ReplayRuns-before.ReplayRuns),
			)
		}
	}
}
