package runner

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// GroupJob is one experiment cell of a fusable group. Key has Job.Key's
// cache semantics (cells are deduplicated and cached individually, so a
// fused cell still short-circuits a later per-cell submission and vice
// versa). Group names the execution group: cells of one MapGroups call
// that share a Group value — in the experiment drivers, cells that
// analyse the same (benchmark, budget) instruction stream — and miss the
// cache are executed together in a single fused run.
type GroupJob[T any] struct {
	// Key identifies the cell for deduplication (see Job.Key). Empty
	// keys are never cached.
	Key string
	// Group is the execution-group key. It must capture everything that
	// determines the shared input of the fused execution (for stream
	// analyses: the benchmark, budget, seed and batch size), and cells
	// with equal Group values must be executable in one call.
	Group string
	// Label is what progress events report; the Key (or Group) is used
	// when empty.
	Label string
}

func (j GroupJob[T]) label() string {
	switch {
	case j.Label != "":
		return j.Label
	case j.Key != "":
		return j.Key
	default:
		return j.Group
	}
}

// MapGroups resolves cells through the runner's cache exactly like Map —
// results return in job order, identical at any worker count — but
// executes the cache-missing cells group by group: all missing cells
// sharing a Group value are handed to exec in one call, holding one
// worker slot, so cells that can share one traversal of their input run
// fused instead of re-traversing it once per cell. exec must return one
// result per index of idx, in order; each result is cached under its
// cell's Key. Like Job.Run, exec must be a pure function of its cells'
// inputs and must not submit further work to the same Runner.
//
// Cached and in-flight cells are served exactly as in Map (JobCached
// events, CacheHits/Coalesced stats). Executed groups emit one
// JobStarted/JobDone pair labelled after their first cell, count one
// GroupRuns stat, and count every covered cell in Executed.
func MapGroups[T any](ctx context.Context, r *Runner, jobs []GroupJob[T],
	exec func(ctx context.Context, group string, idx []int) ([]T, error)) ([]T, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r.submitted.Add(uint64(len(jobs)))
	mSubmitted.Add(uint64(len(jobs)))
	out := make([]T, len(jobs))
	errs := make([]error, len(jobs))

	// resolve records one group outcome: per-cell results or a shared
	// error, finalising the cache entries the group claimed (nil for
	// uncacheable cells). Entries resolved with a context error are
	// dropped from the cache before done closes, so waiters retry and a
	// later uncancelled call recomputes the cell (as in Runner.do).
	resolve := func(idx []int, entries []*entry, vals []T, err error) {
		if err != nil {
			cancel()
		}
		for j, i := range idx {
			if err != nil {
				errs[i] = err
			} else {
				out[i] = vals[j]
			}
			e := entries[j]
			if e == nil {
				continue
			}
			if err != nil {
				e.err = err
			} else {
				e.val = vals[j]
				r.tierPut(jobs[i].Key, vals[j])
			}
			if err != nil && isContextErr(err) {
				r.mu.Lock()
				delete(r.cache, jobs[i].Key)
				r.mu.Unlock()
			}
			close(e.done)
		}
	}

	// execGroup runs exec for the claimed cells on one worker slot.
	execGroup := func(idx []int, entries []*entry) {
		label := jobs[idx[0]].label()
		if len(idx) > 1 {
			label = fmt.Sprintf("%s (+%d fused)", label, len(idx)-1)
		}
		group := jobs[idx[0]].Group
		select {
		case r.sem <- struct{}{}:
		case <-ctx.Done():
			resolve(idx, entries, nil, ctx.Err())
			return
		}
		defer func() { <-r.sem }()
		if err := ctx.Err(); err != nil {
			resolve(idx, entries, nil, err)
			return
		}
		r.emit(Event{Kind: JobStarted, Key: group, Label: label, Completed: r.completed.Load()})
		start := time.Now()
		vals, err := exec(ctx, group, idx)
		elapsed := time.Since(start)
		r.groupRuns.Add(1)
		mGroupRuns.Inc()
		mJobSeconds.Observe(elapsed.Seconds())
		if err == nil && len(vals) != len(idx) {
			err = fmt.Errorf("runner: group %q returned %d results for %d cells", group, len(vals), len(idx))
		}
		if err != nil {
			r.failures.Add(1)
			mFailures.Inc()
			r.emit(Event{Kind: JobFailed, Key: group, Label: label, Err: err, Elapsed: elapsed, Completed: r.completed.Load()})
			resolve(idx, entries, nil, err)
			return
		}
		r.executed.Add(uint64(len(idx)))
		mExecuted.Add(uint64(len(idx)))
		r.emit(Event{Kind: JobDone, Key: group, Label: label, Elapsed: elapsed, Completed: r.completed.Add(uint64(len(idx)))})
		resolve(idx, entries, vals, nil)
	}

	// waitCell resolves one cell whose key was already claimed when this
	// call arrived (Runner.do's waiter branch); if the claim it waited on
	// was cancelled, it retries — claiming and running the cell as a
	// singleton group if the entry is gone.
	waitCell := func(i int) {
		job := jobs[i]
		for {
			r.mu.Lock()
			e, ok := r.cache[job.Key]
			if !ok {
				e = &entry{done: make(chan struct{})}
				r.cache[job.Key] = e
				r.mu.Unlock()
				execGroup([]int{i}, []*entry{e})
				return
			}
			r.mu.Unlock()
			resolvedAlready := false
			select {
			case <-e.done:
				resolvedAlready = true
			default:
			}
			select {
			case <-e.done:
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			if e.err != nil && isContextErr(e.err) {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				continue
			}
			if resolvedAlready {
				r.cacheHits.Add(1)
				mCacheHits.Inc()
			} else {
				r.coalesced.Add(1)
				mCoalesced.Inc()
			}
			if e.err != nil {
				r.emit(Event{Kind: JobFailed, Key: job.Key, Label: job.label(), Err: e.err, Completed: r.completed.Load()})
				errs[i] = e.err
				cancel()
				return
			}
			vv, ok := e.val.(T)
			if !ok {
				errs[i] = fmt.Errorf("runner: cached value for %q is %T, not the job's result type", job.Key, e.val)
				cancel()
				return
			}
			r.emit(Event{Kind: JobCached, Key: job.Key, Label: job.label(), Completed: r.completed.Add(1)})
			out[i] = vv
			return
		}
	}

	// Claim pass: decide, in job order, which cells this call executes
	// (grouped) and which wait on an existing claim. groups preserves
	// first-appearance order so the schedule is deterministic.
	var (
		groupOrder   []string
		groupIdx     = map[string][]int{}
		groupEntries = map[string][]*entry{}
		waiters      []int
	)
	for i := range jobs {
		job := jobs[i]
		var e *entry
		if job.Key != "" {
			r.mu.Lock()
			if _, ok := r.cache[job.Key]; ok {
				r.mu.Unlock()
				waiters = append(waiters, i)
				continue
			}
			e = &entry{done: make(chan struct{})}
			r.cache[job.Key] = e
			r.mu.Unlock()
			// The persistent tier gets one look before the cell joins a
			// fused group: a disk hit resolves the claim immediately and
			// keeps the cell out of this call's traversals.
			if v, hit := r.tierGet(job.Key); hit {
				if vv, ok := v.(T); ok {
					e.val = v
					close(e.done)
					out[i] = vv
					r.diskHits.Add(1)
					mDiskHits.Inc()
					r.emit(Event{Kind: JobCached, Key: job.Key, Label: job.label(), Completed: r.completed.Add(1)})
					continue
				}
				// Wrong type for this job's key: fall through and
				// recompute (the write-back overwrites the stale entry).
				r.tierErrors.Add(1)
				mTierErrors.Inc()
			}
		}
		if _, ok := groupIdx[job.Group]; !ok {
			groupOrder = append(groupOrder, job.Group)
		}
		groupIdx[job.Group] = append(groupIdx[job.Group], i)
		groupEntries[job.Group] = append(groupEntries[job.Group], e)
	}

	var wg sync.WaitGroup
	for _, g := range groupOrder {
		idx, entries := groupIdx[g], groupEntries[g]
		wg.Add(1)
		go func() {
			defer wg.Done()
			execGroup(idx, entries)
		}()
	}
	for _, i := range waiters {
		wg.Add(1)
		go func() {
			defer wg.Done()
			waitCell(i)
		}()
	}
	wg.Wait()
	return collectErrs(out, errs)
}

// collectErrs implements Map's error policy: report the job that
// actually failed, not the cancellation fallout of its siblings, falling
// back to the first (context) error.
func collectErrs[T any](out []T, errs []error) ([]T, error) {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !isContextErr(err) {
			return nil, err
		}
	}
	if first != nil {
		return nil, first
	}
	return out, nil
}
