package runner

import "dynloop/internal/obs"

// Process-wide mirrors of the per-Runner tier counters, registered in
// the obs default registry so GET /metrics and the soak harness can
// scrape them. Every site that bumps a Runner's instance atomic bumps
// the matching mirror; the per-instance Stats() snapshot and the
// scraped process totals therefore reconcile exactly on a
// single-runner process (the daemon), and the scrape is the sum over
// runners otherwise. All mirrors are plain atomic adds — the job
// dispatch path stays allocation-free.
var (
	mSubmitted  = obs.NewCounter("dynloop_runner_jobs_submitted_total", "Jobs handed to Map/MapGroups.")
	mExecuted   = obs.NewCounter("dynloop_runner_jobs_executed_total", "Jobs that actually ran (cache misses).")
	mCacheHits  = obs.NewCounter("dynloop_runner_cache_hits_total", "Jobs satisfied by the in-memory result tier.")
	mCoalesced  = obs.NewCounter("dynloop_runner_coalesced_total", "Jobs that joined an identical in-flight cell.")
	mFailures   = obs.NewCounter("dynloop_runner_failures_total", "Failed job executions.")
	mGroupRuns  = obs.NewCounter("dynloop_runner_group_runs_total", "Fused group executions (MapGroups).")
	mDiskHits   = obs.NewCounter("dynloop_runner_disk_hits_total", "Jobs satisfied from the second (disk-store) tier.")
	mDiskPuts   = obs.NewCounter("dynloop_runner_disk_puts_total", "Results written back to the second tier.")
	mTierErrors = obs.NewCounter("dynloop_runner_tier_errors_total", "Second-tier operations that failed (treated as misses).")
	mReplayRuns = obs.NewCounter("dynloop_runner_replay_runs_total", "Group executions served by trace-archive replay.")
	mRecordRuns = obs.NewCounter("dynloop_runner_record_runs_total", "Group executions that interpreted and recorded the stream.")
	mJobSeconds = obs.NewHistogram("dynloop_runner_job_seconds",
		"Wall-clock seconds per executed job (cache hits excluded).", obs.DefLatencyBuckets)
)
