package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// job builds a trivial cell computing i*i with an optional key.
func job(i int, key string) Job[int] {
	return Job[int]{Key: key, Run: func(ctx context.Context) (int, error) { return i * i, nil }}
}

// TestMapOrderAndDeterminism: results are slotted by job index at any
// worker count, so parallel and sequential runs are identical.
func TestMapOrderAndDeterminism(t *testing.T) {
	const n = 64
	run := func(workers int) []int {
		r := New(Config{Workers: workers})
		jobs := make([]Job[int], n)
		for i := range jobs {
			jobs[i] = job(i, "")
		}
		out, err := Map(context.Background(), r, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := run(1), run(8)
	for i := range seq {
		if seq[i] != i*i || par[i] != i*i {
			t.Fatalf("slot %d: seq=%d par=%d want %d", i, seq[i], par[i], i*i)
		}
	}
}

// TestCacheHitAccounting: repeated keys execute once; the rest are
// accounted as cache hits (or coalesced waits when still in flight).
func TestCacheHitAccounting(t *testing.T) {
	r := New(Config{Workers: 4})
	var executions atomic.Uint64
	mk := func(key string) Job[int] {
		return Job[int]{Key: key, Run: func(ctx context.Context) (int, error) {
			executions.Add(1)
			return len(key), nil
		}}
	}
	// First Map: 6 jobs over 2 distinct keys.
	jobs := []Job[int]{mk("a"), mk("bb"), mk("a"), mk("bb"), mk("a"), mk("bb")}
	out, err := Map(context.Background(), r, jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 1, 2, 1, 2}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	if got := executions.Load(); got != 2 {
		t.Fatalf("executed %d times, want 2", got)
	}
	// Second Map over the same keys: pure cache hits.
	if _, err := Map(context.Background(), r, []Job[int]{mk("a"), mk("bb")}); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Submitted != 8 || s.Executed != 2 {
		t.Fatalf("stats = %+v, want Submitted=8 Executed=2", s)
	}
	if s.CacheHits+s.Coalesced != 6 {
		t.Fatalf("stats = %+v, want CacheHits+Coalesced=6", s)
	}
	if s.CacheHits < 2 {
		t.Fatalf("stats = %+v, want at least the 2 second-Map hits settled", s)
	}
}

// TestEmptyKeyNeverCached: uncacheable jobs run every time.
func TestEmptyKeyNeverCached(t *testing.T) {
	r := New(Config{Workers: 2})
	var executions atomic.Uint64
	j := Job[int]{Run: func(ctx context.Context) (int, error) {
		executions.Add(1)
		return 7, nil
	}}
	for i := 0; i < 3; i++ {
		if _, err := Map(context.Background(), r, []Job[int]{j}); err != nil {
			t.Fatal(err)
		}
	}
	if got := executions.Load(); got != 3 {
		t.Fatalf("executed %d times, want 3", got)
	}
	if s := r.Stats(); s.CacheHits != 0 || s.Coalesced != 0 {
		t.Fatalf("keyless jobs hit the cache: %+v", s)
	}
}

// TestCoalescing: an identical in-flight cell is awaited, not re-run.
func TestCoalescing(t *testing.T) {
	r := New(Config{Workers: 4})
	gate := make(chan struct{})
	var executions atomic.Uint64
	jobs := make([]Job[int], 4)
	for i := range jobs {
		jobs[i] = Job[int]{Key: "cell", Run: func(ctx context.Context) (int, error) {
			executions.Add(1)
			<-gate
			return 42, nil
		}}
	}
	done := make(chan struct{})
	var out []int
	var mapErr error
	go func() {
		defer close(done)
		out, mapErr = Map(context.Background(), r, jobs)
	}()
	// Wait for the single executor to be in flight (the other three
	// submissions land on its cache entry), then release it.
	deadline := time.After(5 * time.Second)
	for executions.Load() == 0 {
		select {
		case <-deadline:
			t.Fatalf("executor never started: %+v", r.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(gate)
	<-done
	if mapErr != nil {
		t.Fatal(mapErr)
	}
	for i, v := range out {
		if v != 42 {
			t.Fatalf("slot %d = %d, want 42", i, v)
		}
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("executed %d times, want 1", got)
	}
	if s := r.Stats(); s.CacheHits+s.Coalesced != 3 {
		t.Fatalf("stats = %+v, want CacheHits+Coalesced=3", s)
	}
}

// TestCancellation: cancelling the context aborts queued jobs and Map
// reports the context error.
func TestCancellation(t *testing.T) {
	r := New(Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 16)
	var executions atomic.Uint64
	jobs := make([]Job[int], 16)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprintf("cell-%d", i), Run: func(ctx context.Context) (int, error) {
			executions.Add(1)
			started <- struct{}{}
			<-ctx.Done()
			return i, nil
		}}
	}
	go func() {
		<-started
		cancel()
	}()
	_, err := Map(ctx, r, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// With one worker, whichever job won the slot blocks the pool until
	// cancellation, so the 15 queued jobs must never have run.
	if got := executions.Load(); got != 1 {
		t.Fatalf("executed %d jobs after cancel, want 1", got)
	}
}

// TestCancelledCellNotCached: a cell whose execution was cancelled must
// be recomputed by a later, healthy Map rather than served the stale
// context error.
func TestCancelledCellNotCached(t *testing.T) {
	r := New(Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	canceled := Job[int]{Key: "cell", Run: func(ctx context.Context) (int, error) {
		return 0, ctx.Err()
	}}
	if _, err := Map(ctx, r, []Job[int]{canceled}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	healthy := Job[int]{Key: "cell", Run: func(ctx context.Context) (int, error) { return 5, nil }}
	out, err := Map(context.Background(), r, []Job[int]{healthy})
	if err != nil || out[0] != 5 {
		t.Fatalf("retry after cancel: out=%v err=%v", out, err)
	}
}

// TestErrorPropagation: the failing job's error wins over the
// cancellation fallout of its siblings, and failed cells stay cached.
func TestErrorPropagation(t *testing.T) {
	r := New(Config{Workers: 2})
	boom := errors.New("boom")
	var executions atomic.Uint64
	jobs := make([]Job[int], 8)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprintf("cell-%d", i), Run: func(ctx context.Context) (int, error) {
			executions.Add(1)
			if i == 3 {
				return 0, boom
			}
			return i, nil
		}}
	}
	if _, err := Map(context.Background(), r, jobs); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if s := r.Stats(); s.Failures != 1 {
		t.Fatalf("stats = %+v, want Failures=1", s)
	}
	// The failed cell's error is a real result and stays cached.
	before := executions.Load()
	if _, err := Map(context.Background(), r, []Job[int]{jobs[3]}); !errors.Is(err, boom) {
		t.Fatalf("cached failure: err = %v, want boom", err)
	}
	if executions.Load() != before {
		t.Fatal("failed cell was re-executed")
	}
}

// TestCachedFailureEmitsEvent: replaying a cached failure surfaces in
// the progress stream as a failure, counts as a cache hit, and does not
// inflate Failures.
func TestCachedFailureEmitsEvent(t *testing.T) {
	var mu sync.Mutex
	var failedEvents int
	r := New(Config{Workers: 2, OnEvent: func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Kind == JobFailed {
			failedEvents++
		}
	}})
	boom := errors.New("boom")
	j := Job[int]{Key: "cell", Run: func(ctx context.Context) (int, error) { return 0, boom }}
	for i := 0; i < 2; i++ {
		if _, err := Map(context.Background(), r, []Job[int]{j}); !errors.Is(err, boom) {
			t.Fatalf("round %d: err = %v, want boom", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if failedEvents != 2 {
		t.Fatalf("saw %d JobFailed events, want 2 (execution + cached replay)", failedEvents)
	}
	if s := r.Stats(); s.Failures != 1 || s.Executed != 1 || s.CacheHits != 1 {
		t.Fatalf("stats = %+v, want Failures=1 Executed=1 CacheHits=1", s)
	}
}

// TestProgressEvents: every job yields a terminal event and Completed
// reaches the job count.
func TestProgressEvents(t *testing.T) {
	var mu = make(chan struct{}, 1)
	var events []Event
	r := New(Config{Workers: 4, OnEvent: func(ev Event) {
		mu <- struct{}{}
		events = append(events, ev)
		<-mu
	}})
	jobs := []Job[int]{job(1, "a"), job(2, "a"), job(3, "b"), job(4, "")}
	if _, err := Map(context.Background(), r, jobs); err != nil {
		t.Fatal(err)
	}
	var started, terminal int
	var maxCompleted uint64
	for _, ev := range events {
		switch ev.Kind {
		case JobStarted:
			started++
		case JobDone, JobCached:
			terminal++
			if ev.Completed > maxCompleted {
				maxCompleted = ev.Completed
			}
		case JobFailed:
			t.Fatalf("unexpected failure event: %+v", ev)
		}
	}
	// 3 executions (a, b, keyless) + 1 cache/coalesce terminal event.
	if started != 3 || terminal != 4 {
		t.Fatalf("started=%d terminal=%d, want 3 and 4", started, terminal)
	}
	if maxCompleted != 4 {
		t.Fatalf("max Completed = %d, want 4", maxCompleted)
	}
}

// TestWorkersDefault: 0 workers selects GOMAXPROCS, and the bound is
// reported.
func TestWorkersDefault(t *testing.T) {
	if w := New(Config{}).Workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if w := New(Config{Workers: 3}).Workers(); w != 3 {
		t.Fatalf("workers = %d, want 3", w)
	}
}

// TestConcurrencyBound: no more than Workers jobs run at once, even
// across concurrent Map calls on the same runner.
func TestConcurrencyBound(t *testing.T) {
	const bound = 3
	r := New(Config{Workers: bound})
	var running, peak atomic.Int64
	mk := func(i int) Job[int] {
		return Job[int]{Run: func(ctx context.Context) (int, error) {
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			return i, nil
		}}
	}
	done := make(chan error, 2)
	for g := 0; g < 2; g++ {
		go func() {
			jobs := make([]Job[int], 20)
			for i := range jobs {
				jobs[i] = mk(i)
			}
			_, err := Map(context.Background(), r, jobs)
			done <- err
		}()
	}
	for g := 0; g < 2; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if p := peak.Load(); p > bound {
		t.Fatalf("peak concurrency %d exceeds bound %d", p, bound)
	}
}
