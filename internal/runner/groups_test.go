package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// groupExec returns an exec that computes cell i as f(i) and counts
// invocations (one per fused group).
func groupExec(f func(i int) int, runs *atomic.Uint64) func(ctx context.Context, group string, idx []int) ([]int, error) {
	return func(ctx context.Context, group string, idx []int) ([]int, error) {
		runs.Add(1)
		out := make([]int, len(idx))
		for j, i := range idx {
			out[j] = f(i)
		}
		return out, nil
	}
}

// TestMapGroupsFusesByGroup: cells sharing a Group value execute in one
// exec call, and results come back in job order.
func TestMapGroupsFusesByGroup(t *testing.T) {
	r := New(Config{Workers: 4})
	jobs := make([]GroupJob[int], 12)
	for i := range jobs {
		jobs[i] = GroupJob[int]{Key: fmt.Sprintf("k%d", i), Group: fmt.Sprintf("g%d", i%3)}
	}
	var runs atomic.Uint64
	out, err := MapGroups(context.Background(), r, jobs, groupExec(func(i int) int { return i * i }, &runs))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if runs.Load() != 3 {
		t.Fatalf("exec ran %d times, want 3 (one per group)", runs.Load())
	}
	s := r.Stats()
	if s.Executed != 12 || s.GroupRuns != 3 || s.Submitted != 12 {
		t.Fatalf("stats = %+v, want 12 executed in 3 group runs", s)
	}
}

// TestMapGroupsCacheInterop: cells cached by Map are served to MapGroups
// without executing, and cells a group executed satisfy a later Map.
func TestMapGroupsCacheInterop(t *testing.T) {
	r := New(Config{Workers: 2})
	ctx := context.Background()
	if _, err := Map(ctx, r, []Job[int]{{Key: "a", Run: func(context.Context) (int, error) { return 100, nil }}}); err != nil {
		t.Fatal(err)
	}
	var runs atomic.Uint64
	jobs := []GroupJob[int]{
		{Key: "a", Group: "g"},
		{Key: "b", Group: "g"},
		{Key: "c", Group: "g"},
	}
	out, err := MapGroups(ctx, r, jobs, func(ctx context.Context, group string, idx []int) ([]int, error) {
		runs.Add(1)
		if len(idx) != 2 || idx[0] != 1 || idx[1] != 2 {
			return nil, fmt.Errorf("group got cells %v, want [1 2] (cell 0 is cached)", idx)
		}
		return []int{201, 202}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 100 || out[1] != 201 || out[2] != 202 {
		t.Fatalf("out = %v", out)
	}
	if runs.Load() != 1 {
		t.Fatalf("exec ran %d times, want 1", runs.Load())
	}
	if hits := r.Stats().CacheHits; hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	// The group-computed cell now serves a plain Map without running.
	vs, err := Map(ctx, r, []Job[int]{{Key: "b", Run: func(context.Context) (int, error) {
		return 0, errors.New("must not run")
	}}})
	if err != nil || vs[0] != 201 {
		t.Fatalf("cached b = %v, %v", vs, err)
	}
}

// TestMapGroupsDuplicateKeys: a duplicate key within one call coalesces
// onto the claimed cell instead of executing twice.
func TestMapGroupsDuplicateKeys(t *testing.T) {
	r := New(Config{Workers: 4})
	jobs := []GroupJob[int]{
		{Key: "x", Group: "g1"},
		{Key: "x", Group: "g2"},
	}
	var runs atomic.Uint64
	out, err := MapGroups(context.Background(), r, jobs, groupExec(func(i int) int { return 7 }, &runs))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 7 || out[1] != 7 {
		t.Fatalf("out = %v", out)
	}
	if runs.Load() != 1 {
		t.Fatalf("exec ran %d times, want 1", runs.Load())
	}
	s := r.Stats()
	if s.CacheHits+s.Coalesced != 1 {
		t.Fatalf("stats = %+v, want the duplicate served from cache or coalesced", s)
	}
}

// TestMapGroupsUncachedCells: empty keys always execute and are never
// stored.
func TestMapGroupsUncachedCells(t *testing.T) {
	r := New(Config{})
	jobs := []GroupJob[int]{{Group: "g"}, {Group: "g"}}
	var runs atomic.Uint64
	exec := groupExec(func(i int) int { return i + 1 }, &runs)
	for round := 1; round <= 2; round++ {
		out, err := MapGroups(context.Background(), r, jobs, exec)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != 1 || out[1] != 2 {
			t.Fatalf("round %d: out = %v", round, out)
		}
		if runs.Load() != uint64(round) {
			t.Fatalf("round %d: exec ran %d times", round, runs.Load())
		}
	}
}

// TestMapGroupsFailurePropagates: a failing group fails all of its cells
// with the group's error, and the failure is cached per cell.
func TestMapGroupsFailurePropagates(t *testing.T) {
	r := New(Config{Workers: 2})
	boom := errors.New("boom")
	jobs := []GroupJob[int]{
		{Key: "f1", Group: "bad"},
		{Key: "f2", Group: "bad"},
	}
	_, err := MapGroups(context.Background(), r, jobs, func(ctx context.Context, group string, idx []int) ([]int, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if f := r.Stats().Failures; f != 1 {
		t.Fatalf("failures = %d, want 1 (one failed group execution)", f)
	}
	// The cached failure replays without re-executing.
	_, err = Map(context.Background(), r, []Job[int]{{Key: "f1", Run: func(context.Context) (int, error) {
		t.Fatal("failed cell re-executed")
		return 0, nil
	}}})
	if !errors.Is(err, boom) {
		t.Fatalf("replayed err = %v, want boom", err)
	}
}

// TestMapGroupsResultCountMismatch: exec returning the wrong number of
// results is an error, not a silent truncation.
func TestMapGroupsResultCountMismatch(t *testing.T) {
	r := New(Config{})
	jobs := []GroupJob[int]{{Key: "m1", Group: "g"}, {Key: "m2", Group: "g"}}
	_, err := MapGroups(context.Background(), r, jobs, func(ctx context.Context, group string, idx []int) ([]int, error) {
		return []int{1}, nil
	})
	if err == nil {
		t.Fatal("short result slice accepted")
	}
}

// TestMapGroupsCancellation: a cancelled context aborts the call with
// the context error and leaves no poisoned cache entries behind.
func TestMapGroupsCancellation(t *testing.T) {
	r := New(Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []GroupJob[int]{{Key: "c1", Group: "g"}}
	if _, err := MapGroups(ctx, r, jobs, groupExec(func(i int) int { return 1 }, new(atomic.Uint64))); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A later uncancelled call recomputes the cell for real.
	out, err := MapGroups(context.Background(), r, jobs, groupExec(func(i int) int { return 42 }, new(atomic.Uint64)))
	if err != nil || out[0] != 42 {
		t.Fatalf("retry = %v, %v", out, err)
	}
}

// TestMapGroupsDeterministicAcrossWorkers: the fused schedule returns
// identical results at any worker count.
func TestMapGroupsDeterministicAcrossWorkers(t *testing.T) {
	mk := func(workers int) []int {
		r := New(Config{Workers: workers})
		jobs := make([]GroupJob[int], 40)
		for i := range jobs {
			jobs[i] = GroupJob[int]{Key: fmt.Sprintf("d%d", i), Group: fmt.Sprintf("g%d", i%7)}
		}
		out, err := MapGroups(context.Background(), r, jobs, groupExec(func(i int) int { return i * 3 }, new(atomic.Uint64)))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := mk(1), mk(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
