package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// fakeCache is an in-memory runner.Cache with fault injection.
type fakeCache struct {
	mu      sync.Mutex
	m       map[string]any
	getErr  error
	putErr  error
	gets    int
	puts    int
	skipPut bool
}

func newFakeCache() *fakeCache { return &fakeCache{m: map[string]any{}} }

func (c *fakeCache) Get(key string) (any, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	if c.getErr != nil {
		return nil, false, c.getErr
	}
	v, ok := c.m[key]
	return v, ok, nil
}

func (c *fakeCache) Put(key string, v any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	if c.putErr != nil {
		return c.putErr
	}
	if !c.skipPut {
		c.m[key] = v
	}
	return nil
}

func intJob(key string, v int, ran *int) Job[int] {
	return Job[int]{Key: key, Run: func(context.Context) (int, error) {
		*ran++
		return v, nil
	}}
}

func TestMapWritesBackAndHitsDiskTier(t *testing.T) {
	c := newFakeCache()
	ctx := context.Background()

	var ran int
	r1 := New(Config{Workers: 2, Cache: c})
	out, err := Map(ctx, r1, []Job[int]{intJob("a", 1, &ran), intJob("b", 2, &ran)})
	if err != nil || out[0] != 1 || out[1] != 2 {
		t.Fatalf("first run: %v %v", out, err)
	}
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if s := r1.Stats(); s.DiskPuts != 2 || s.DiskHits != 0 {
		t.Fatalf("first-run stats = %+v", s)
	}

	// A fresh runner sharing the cache serves both cells from the tier.
	r2 := New(Config{Workers: 2, Cache: c})
	out, err = Map(ctx, r2, []Job[int]{intJob("a", 99, &ran), intJob("b", 99, &ran)})
	if err != nil || out[0] != 1 || out[1] != 2 {
		t.Fatalf("second run: %v %v", out, err)
	}
	if ran != 2 {
		t.Fatalf("tier hit still executed: ran = %d", ran)
	}
	if s := r2.Stats(); s.DiskHits != 2 || s.Executed != 0 {
		t.Fatalf("second-run stats = %+v", s)
	}

	// Same runner again: now the in-memory tier answers, not the disk.
	gets := c.gets
	out, err = Map(ctx, r2, []Job[int]{intJob("a", 99, &ran)})
	if err != nil || out[0] != 1 {
		t.Fatalf("third run: %v %v", out, err)
	}
	if c.gets != gets {
		t.Fatalf("memory hit consulted the disk tier (%d extra gets)", c.gets-gets)
	}
	if s := r2.Stats(); s.CacheHits != 1 {
		t.Fatalf("third-run stats = %+v", s)
	}
}

func TestMapGroupsHitsDiskTierPerCell(t *testing.T) {
	c := newFakeCache()
	ctx := context.Background()
	exec := func(mul int, execs *int) func(context.Context, string, []int) ([]int, error) {
		return func(_ context.Context, _ string, idx []int) ([]int, error) {
			*execs++
			out := make([]int, len(idx))
			for j, i := range idx {
				out[j] = mul * (i + 1)
			}
			return out, nil
		}
	}
	jobs := []GroupJob[int]{
		{Key: "a", Group: "g1"},
		{Key: "b", Group: "g1"},
		{Key: "c", Group: "g2"},
	}

	var execs int
	r1 := New(Config{Workers: 2, Cache: c})
	out, err := MapGroups(ctx, r1, jobs, exec(10, &execs))
	if err != nil || out[0] != 10 || out[1] != 20 || out[2] != 30 {
		t.Fatalf("first run: %v %v", out, err)
	}
	if execs != 2 {
		t.Fatalf("group execs = %d, want 2", execs)
	}
	if s := r1.Stats(); s.DiskPuts != 3 {
		t.Fatalf("first-run stats = %+v", s)
	}

	// Partially warm tier: only "b" missing → it runs as a singleton
	// group, a and c come from disk.
	c.mu.Lock()
	delete(c.m, "b")
	c.mu.Unlock()
	execs = 0
	r2 := New(Config{Workers: 2, Cache: c})
	out, err = MapGroups(ctx, r2, jobs, exec(10, &execs))
	if err != nil || out[0] != 10 || out[1] != 20 || out[2] != 30 {
		t.Fatalf("second run: %v %v", out, err)
	}
	if execs != 1 {
		t.Fatalf("warm group execs = %d, want 1", execs)
	}
	if s := r2.Stats(); s.DiskHits != 2 || s.Executed != 1 {
		t.Fatalf("second-run stats = %+v", s)
	}
}

func TestTierErrorsReadAsMisses(t *testing.T) {
	c := newFakeCache()
	c.getErr = errors.New("disk on fire")
	ctx := context.Background()
	var ran int
	r := New(Config{Workers: 1, Cache: c})
	out, err := Map(ctx, r, []Job[int]{intJob("a", 7, &ran)})
	if err != nil || out[0] != 7 || ran != 1 {
		t.Fatalf("run with failing tier: %v %v ran=%d", out, err, ran)
	}
	s := r.Stats()
	if s.TierErrors == 0 {
		t.Fatalf("tier error not counted: %+v", s)
	}

	c2 := newFakeCache()
	c2.putErr = errors.New("disk full")
	r2 := New(Config{Workers: 1, Cache: c2})
	if _, err := Map(ctx, r2, []Job[int]{intJob("a", 7, &ran)}); err != nil {
		t.Fatalf("put failure must not fail the job: %v", err)
	}
	if s := r2.Stats(); s.TierErrors != 1 || s.DiskPuts != 0 {
		t.Fatalf("put-failure stats = %+v", s)
	}
}

func TestStaleTypeFromTier(t *testing.T) {
	ctx := context.Background()
	c := newFakeCache()
	c.m["k"] = "a string, not an int"

	// Map: self-invalidates — recomputes the cell and overwrites the
	// stale entry; the tier must never fail a job.
	var ran int
	r := New(Config{Workers: 1, Cache: c})
	out, err := Map(ctx, r, []Job[int]{intJob("k", 1, &ran)})
	if err != nil || out[0] != 1 || ran != 1 {
		t.Fatalf("Map with stale-typed tier value: %v %v ran=%d", out, err, ran)
	}
	if v, _, _ := c.Get("k"); v != 1 {
		t.Fatalf("stale tier entry not overwritten by Map: %v", v)
	}
	if s := r.Stats(); s.TierErrors == 0 || s.DiskHits != 0 {
		t.Fatalf("Map stale-type stats = %+v", s)
	}
	c.m["k"] = "a string, not an int"

	// MapGroups: self-invalidates the same way.
	r2 := New(Config{Workers: 1, Cache: c})
	out, err = MapGroups(ctx, r2, []GroupJob[int]{{Key: "k", Group: "g"}},
		func(_ context.Context, _ string, idx []int) ([]int, error) {
			return []int{42}, nil
		})
	if err != nil || out[0] != 42 {
		t.Fatalf("MapGroups with stale-typed tier value: %v %v", out, err)
	}
	if v, _, _ := c.Get("k"); v != 42 {
		t.Fatalf("stale tier entry not overwritten: %v", v)
	}
	if s := r2.Stats(); s.TierErrors == 0 {
		t.Fatalf("stale type not counted as tier error: %+v", s)
	}
}

func TestDiskHitEmitsCachedEvent(t *testing.T) {
	ctx := context.Background()
	c := newFakeCache()
	c.m["k"] = 5
	var mu sync.Mutex
	var kinds []EventKind
	r := New(Config{Workers: 1, Cache: c, OnEvent: func(ev Event) {
		mu.Lock()
		kinds = append(kinds, ev.Kind)
		mu.Unlock()
	}})
	var ran int
	if _, err := Map(ctx, r, []Job[int]{intJob("k", 1, &ran)}); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 1 || kinds[0] != JobCached {
		t.Fatalf("events = %v, want one JobCached", kinds)
	}
	if ran != 0 {
		t.Fatal("disk hit still executed the job")
	}
}

func TestUncacheableJobsSkipTier(t *testing.T) {
	ctx := context.Background()
	c := newFakeCache()
	r := New(Config{Workers: 1, Cache: c})
	var ran int
	if _, err := Map(ctx, r, []Job[int]{intJob("", 3, &ran)}); err != nil {
		t.Fatal(err)
	}
	if c.gets != 0 || c.puts != 0 {
		t.Fatalf("empty-key job touched the tier: gets=%d puts=%d", c.gets, c.puts)
	}
}

func ExampleCache() {
	// A Runner with a Cache behind it survives its own lifetime: give a
	// fresh Runner the same Cache and previously computed cells are
	// served without executing.
	c := newFakeCache()
	for round := 1; round <= 2; round++ {
		r := New(Config{Workers: 1, Cache: c})
		executions := 0
		out, _ := Map(context.Background(), r, []Job[int]{{
			Key: "cell",
			Run: func(context.Context) (int, error) { executions++; return 42, nil },
		}})
		fmt.Printf("round %d: result %d, executed %d, disk hits %d\n",
			round, out[0], executions, r.Stats().DiskHits)
	}
	// Output:
	// round 1: result 42, executed 1, disk hits 0
	// round 2: result 42, executed 0, disk hits 1
}
