// Package runner is the parallel experiment orchestrator: it fans
// independent experiment cells (benchmark × policy × table-capacity ×
// ablation jobs) across a bounded pool of goroutines, deduplicates
// repeated cells through a keyed result cache, and streams per-job
// progress events to the caller.
//
// The contract that makes parallel experiment output byte-identical to
// the sequential run is simple: jobs are pure functions of their inputs,
// and Map slots every result by its job index. Concurrency changes only
// the wall-clock schedule, never the results or their order. A single
// Runner may be shared by many drivers (and many concurrent Map calls);
// the worker bound and the cache are runner-wide, so overlapping cells —
// Figure 7's STR column is Figure 6, its STR(3)/4TU cell is Table 2 —
// are computed once per Runner.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config parametrises a Runner.
type Config struct {
	// Workers bounds the number of concurrently executing jobs across
	// every Map call sharing this Runner; 0 selects GOMAXPROCS.
	Workers int
	// OnEvent, when non-nil, receives one event per job transition
	// (start, done, cache hit, failure). It is called from worker
	// goroutines and must be safe for concurrent use.
	OnEvent func(Event)
	// Cache, when non-nil, is the second result tier behind the runner's
	// in-memory map: a key that misses memory is looked up here before
	// executing, and every successful execution is written back. With a
	// disk-backed Cache (see internal/store) the runner becomes a
	// memory→disk hierarchy whose results outlive the process. Cache
	// errors never fail jobs — a failing tier reads as a miss and the
	// cell recomputes (counted in Stats.TierErrors).
	Cache Cache
}

// Cache is a pluggable second result tier. Implementations must be safe
// for concurrent use. Get returns ok=false when the key is absent; a
// non-nil error (with ok=false) marks an entry that exists but cannot
// be used — corrupt, version-skewed — and is treated as a miss.
// Put persists a computed result; implementations that cannot encode a
// value should skip it and return nil.
type Cache interface {
	Get(key string) (val any, ok bool, err error)
	Put(key string, val any) error
}

// EventKind says what a progress Event reports.
type EventKind uint8

const (
	// JobStarted fires when a job begins executing on a worker.
	JobStarted EventKind = iota
	// JobDone fires when a job finishes successfully.
	JobDone
	// JobCached fires when a job is satisfied from the result cache
	// (including coalescing onto an identical in-flight job).
	JobCached
	// JobFailed fires when a job returns an error.
	JobFailed
)

// String names the event kind for progress displays.
func (k EventKind) String() string {
	switch k {
	case JobStarted:
		return "start"
	case JobDone:
		return "done"
	case JobCached:
		return "cached"
	case JobFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Event is one per-job progress notification.
type Event struct {
	// Kind is the transition being reported.
	Kind EventKind
	// Key is the job's cache key ("" for uncacheable jobs).
	Key string
	// Label is the job's display label (the Key when unset).
	Label string
	// Err is the job's error for JobFailed events.
	Err error
	// Elapsed is the job's execution time (JobDone and JobFailed).
	Elapsed time.Duration
	// Completed is the runner-lifetime count of successfully finished
	// jobs, including cache hits, at the time of the event.
	Completed uint64
}

// Stats are runner-lifetime counters.
type Stats struct {
	// Submitted counts jobs handed to Map.
	Submitted uint64
	// Executed counts jobs that actually ran (cache misses).
	Executed uint64
	// CacheHits counts jobs satisfied by an already-completed cell.
	CacheHits uint64
	// Coalesced counts jobs that waited on an identical in-flight cell
	// instead of running it again.
	Coalesced uint64
	// Failures counts failed executions; cache-served replays of a
	// failed cell count as CacheHits, not new Failures.
	Failures uint64
	// GroupRuns counts fused group executions (MapGroups): each covers
	// one or more executed cells in a single run. Executed also counts
	// plain Map jobs, which have no group run, so Executed/GroupRuns
	// only measures the fusion factor on a runner used purely through
	// MapGroups.
	GroupRuns uint64
	// DiskHits counts jobs satisfied from the second cache tier
	// (Config.Cache) without executing.
	DiskHits uint64
	// DiskPuts counts results handed to the second tier for write-back
	// (the tier itself may skip values it cannot encode).
	DiskPuts uint64
	// TierErrors counts second-tier operations that failed (treated as
	// misses on Get, dropped on Put).
	TierErrors uint64
	// ReplayRuns counts group executions served by the trace-archive
	// third tier (decode-only replay, no interpretation); see
	// CountTraceRun.
	ReplayRuns uint64
	// RecordRuns counts group executions that interpreted the stream and
	// recorded it into the trace archive for later replays.
	RecordRuns uint64
}

// Job is one independent experiment cell producing a T.
type Job[T any] struct {
	// Key identifies the cell for deduplication: two jobs with the same
	// key on the same Runner compute their result once. The key must
	// capture every input the result depends on (and, because the cache
	// stores untyped results, determine T). Empty keys are never cached.
	Key string
	// Label is what progress events report; the Key is used when empty.
	Label string
	// Run computes the cell. It must be a pure function of the job's
	// inputs and must not submit further jobs to the same Runner (the
	// worker slot it holds could starve its own children).
	Run func(ctx context.Context) (T, error)
}

func (j Job[T]) label() string {
	if j.Label != "" {
		return j.Label
	}
	return j.Key
}

// Runner executes jobs with bounded concurrency and a keyed result
// cache. Create one with New; the zero value is not usable.
type Runner struct {
	onEvent func(Event)
	sem     chan struct{}
	tier2   Cache

	mu    sync.Mutex
	cache map[string]*entry

	submitted  atomic.Uint64
	executed   atomic.Uint64
	cacheHits  atomic.Uint64
	coalesced  atomic.Uint64
	failures   atomic.Uint64
	groupRuns  atomic.Uint64
	completed  atomic.Uint64
	diskHits   atomic.Uint64
	diskPuts   atomic.Uint64
	tierErrors atomic.Uint64
	replayRuns atomic.Uint64
	recordRuns atomic.Uint64
}

// entry is one cache cell; done is closed once val/err are final.
type entry struct {
	done chan struct{}
	val  any
	err  error
}

// New returns a Runner with cfg's worker bound and an empty cache.
func New(cfg Config) *Runner {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		onEvent: cfg.OnEvent,
		sem:     make(chan struct{}, w),
		tier2:   cfg.Cache,
		cache:   make(map[string]*entry),
	}
}

// Workers returns the concurrency bound.
func (r *Runner) Workers() int { return cap(r.sem) }

// Stats returns a snapshot of the runner-lifetime counters.
func (r *Runner) Stats() Stats {
	return Stats{
		Submitted:  r.submitted.Load(),
		Executed:   r.executed.Load(),
		CacheHits:  r.cacheHits.Load(),
		Coalesced:  r.coalesced.Load(),
		Failures:   r.failures.Load(),
		GroupRuns:  r.groupRuns.Load(),
		DiskHits:   r.diskHits.Load(),
		DiskPuts:   r.diskPuts.Load(),
		TierErrors: r.tierErrors.Load(),
		ReplayRuns: r.replayRuns.Load(),
		RecordRuns: r.recordRuns.Load(),
	}
}

// CountTraceRun records the outcome of one trace-tier group execution:
// replayed from the archive, or interpreted and recorded into it. The
// runner does not drive the trace tier itself — the execution callback
// does (see grid) — so the callback reports the outcome here to keep
// all scheduling statistics in one place.
func (r *Runner) CountTraceRun(replayed bool) {
	if replayed {
		r.replayRuns.Add(1)
		mReplayRuns.Inc()
	} else {
		r.recordRuns.Add(1)
		mRecordRuns.Inc()
	}
}

// tierGet consults the second cache tier; errors read as misses.
func (r *Runner) tierGet(key string) (any, bool) {
	if r.tier2 == nil || key == "" {
		return nil, false
	}
	v, ok, err := r.tier2.Get(key)
	if err != nil {
		r.tierErrors.Add(1)
		mTierErrors.Inc()
		return nil, false
	}
	return v, ok
}

// tierPut persists a computed result to the second tier, best effort.
func (r *Runner) tierPut(key string, v any) {
	if r.tier2 == nil || key == "" {
		return
	}
	if err := r.tier2.Put(key, v); err != nil {
		r.tierErrors.Add(1)
		mTierErrors.Inc()
		return
	}
	r.diskPuts.Add(1)
	mDiskPuts.Inc()
}

func (r *Runner) emit(ev Event) {
	if r.onEvent != nil {
		r.onEvent(ev)
	}
}

// Map runs every job under r's concurrency bound and returns the results
// in job order, so output built from them is identical at any worker
// count. The first failure cancels the jobs still waiting for a worker
// (in-flight jobs run to completion) and is returned; cancelling ctx
// does the same with ctx's error.
func Map[T any](ctx context.Context, r *Runner, jobs []Job[T]) ([]T, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job := jobs[i]
			typeOK := func(v any) bool { _, ok := v.(T); return ok }
			v, err := r.do(ctx, job.Key, job.label(), typeOK, func(ctx context.Context) (any, error) {
				return job.Run(ctx)
			})
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			vv, ok := v.(T)
			if !ok {
				// A cache key must determine its result type; a mismatch
				// means two jobs share a key (or a persistent tier served
				// a stale type) — fail loudly instead of panicking.
				errs[i] = fmt.Errorf("runner: cached value for %q is %T, not the job's result type", job.Key, v)
				cancel()
				return
			}
			out[i] = vv
		}(i)
	}
	wg.Wait()
	// Report the job that actually failed, not the cancellation fallout
	// of its siblings; fall back to the first error (caller-cancelled
	// runs have nothing but context errors).
	return collectErrs(out, errs)
}

// do resolves one job through the cache: the first submission of a key
// executes it, identical concurrent submissions wait for that execution,
// and later submissions hit the stored result. typeOK, when non-nil,
// validates a persistent-tier value's dynamic type for this job: a
// stale-typed entry is recomputed (and overwritten by the write-back)
// rather than served — the tier must never fail a job.
func (r *Runner) do(ctx context.Context, key, label string, typeOK func(any) bool, fn func(context.Context) (any, error)) (any, error) {
	r.submitted.Add(1)
	mSubmitted.Inc()
	if key == "" {
		return r.execute(ctx, key, label, fn)
	}
	for {
		r.mu.Lock()
		e, ok := r.cache[key]
		if !ok {
			e = &entry{done: make(chan struct{})}
			r.cache[key] = e
			r.mu.Unlock()
			// The key is claimed; the persistent tier gets one look
			// before the cell is executed for real.
			if v, hit := r.tierGet(key); hit {
				if typeOK == nil || typeOK(v) {
					e.val = v
					close(e.done)
					r.diskHits.Add(1)
					mDiskHits.Inc()
					r.emit(Event{Kind: JobCached, Key: key, Label: label, Completed: r.completed.Add(1)})
					return e.val, nil
				}
				// Wrong type for this job's key: self-invalidate by
				// recomputing (the write-back overwrites the stale
				// entry), as MapGroups does.
				r.tierErrors.Add(1)
				mTierErrors.Inc()
			}
			e.val, e.err = r.execute(ctx, key, label, fn)
			if e.err == nil {
				r.tierPut(key, e.val)
			}
			if e.err != nil && isContextErr(e.err) {
				// A cancelled execution is not a result: drop the entry
				// so a later submission (from an uncancelled Map) can
				// compute the cell for real.
				r.mu.Lock()
				delete(r.cache, key)
				r.mu.Unlock()
			}
			close(e.done)
			return e.val, e.err
		}
		r.mu.Unlock()
		resolvedAlready := false
		select {
		case <-e.done:
			resolvedAlready = true
		default:
		}
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err != nil && isContextErr(e.err) {
			// The executor we waited on was cancelled; retry unless we
			// are cancelled too. Nothing is counted for this round: the
			// submission lands in exactly one stats bucket once it
			// resolves for real.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			continue
		}
		if resolvedAlready {
			r.cacheHits.Add(1)
			mCacheHits.Inc()
		} else {
			r.coalesced.Add(1)
			mCoalesced.Inc()
		}
		if e.err != nil {
			// A cached failure still surfaces in the progress stream;
			// Failures counts failed executions, not their replays.
			r.emit(Event{Kind: JobFailed, Key: key, Label: label, Err: e.err, Completed: r.completed.Load()})
			return nil, e.err
		}
		r.emit(Event{Kind: JobCached, Key: key, Label: label, Completed: r.completed.Add(1)})
		return e.val, nil
	}
}

// execute runs fn on a worker slot.
func (r *Runner) execute(ctx context.Context, key, label string, fn func(context.Context) (any, error)) (any, error) {
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-r.sem }()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r.emit(Event{Kind: JobStarted, Key: key, Label: label, Completed: r.completed.Load()})
	start := time.Now()
	v, err := fn(ctx)
	elapsed := time.Since(start)
	r.executed.Add(1)
	mExecuted.Inc()
	mJobSeconds.Observe(elapsed.Seconds())
	if err != nil {
		r.failures.Add(1)
		mFailures.Inc()
		r.emit(Event{Kind: JobFailed, Key: key, Label: label, Err: err, Elapsed: elapsed, Completed: r.completed.Load()})
		return nil, err
	}
	r.emit(Event{Kind: JobDone, Key: key, Label: label, Elapsed: elapsed, Completed: r.completed.Add(1)})
	return v, nil
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
