// Benchmarks regenerating every table and figure of the paper's
// evaluation (at a reduced per-iteration budget so -bench=. stays fast;
// the EXPERIMENTS.md numbers come from the full-budget CLI runs), plus
// micro-benchmarks of the core mechanisms. Custom metrics expose the
// reproduced quantity (TPC, hit ratios) alongside time/op.
package dynloop_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"dynloop"
	"dynloop/internal/expt"
	"dynloop/internal/harness"
	"dynloop/internal/interp"
	"dynloop/internal/isa"
	"dynloop/internal/loopdet"
	"dynloop/internal/loopstats"
	"dynloop/internal/looptab"
	"dynloop/internal/runner"
	"dynloop/internal/spec"
	"dynloop/internal/trace"
)

// benchBudget keeps one -bench=. pass quick while still exercising every
// workload's steady state.
const benchBudget = 200_000

func benchCfg() expt.Config { return expt.Config{Budget: benchBudget} }

// BenchmarkTable1LoopStats regenerates Table 1 (loop statistics for the
// 18 workloads) per iteration.
func BenchmarkTable1LoopStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Table1(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var ipe float64
			for _, r := range rows {
				ipe += r.S.ItersPerExec
			}
			b.ReportMetric(ipe/float64(len(rows)), "avg-iter/exec")
		}
	}
}

// BenchmarkFig4HitRatios regenerates Figure 4 (LET/LIT hit ratios vs
// table size) per iteration.
func BenchmarkFig4HitRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := expt.Fig4(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range pts {
				if p.Entries == 16 {
					b.ReportMetric(p.LETPct, "LET16-%")
					b.ReportMetric(p.LITPct, "LIT16-%")
				}
			}
		}
	}
}

// BenchmarkFig5InfiniteTPC regenerates Figure 5 (TPC with unlimited
// TUs) per iteration.
func BenchmarkFig5InfiniteTPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig5(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var maxTPC float64
			for _, r := range rows {
				if r.TPCFull > maxTPC {
					maxTPC = r.TPCFull
				}
			}
			b.ReportMetric(maxTPC, "max-TPC")
		}
	}
}

// BenchmarkFig6TPCSTR regenerates Figure 6 (per-program TPC under STR
// for 2..16 TUs) per iteration.
func BenchmarkFig6TPCSTR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig6(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var avg4 float64
			for _, r := range rows {
				avg4 += r.TPC[4]
			}
			b.ReportMetric(avg4/float64(len(rows)), "avg-TPC-4TU")
		}
	}
}

// BenchmarkFig7Policies regenerates Figure 7 (average TPC for IDLE, STR,
// STR(1..3)) per iteration.
func BenchmarkFig7Policies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := expt.Fig7(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range cells {
				if c.Policy == "STR" && c.TUs == 4 {
					b.ReportMetric(c.AvgTPC, "STR-4TU-TPC")
				}
			}
		}
	}
}

// BenchmarkTable2STR3 regenerates Table 2 (speculation statistics under
// STR(3), 4 TUs) per iteration.
func BenchmarkTable2STR3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Table2(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var hit float64
			for _, r := range rows {
				hit += r.M.HitRatio()
			}
			b.ReportMetric(hit/float64(len(rows)), "avg-hit-%")
		}
	}
}

// BenchmarkFig8DataSpec regenerates Figure 8 (live-in predictability)
// per iteration.
func BenchmarkFig8DataSpec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, avg, err := expt.Fig8(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(avg.S.SamePathPct, "same-path-%")
			b.ReportMetric(avg.S.LrPredPct, "lr-pred-%")
		}
	}
}

// BenchmarkAblationReplacement runs the §2.3.2 replacement ablation.
func BenchmarkAblationReplacement(b *testing.B) {
	cfg := expt.Config{Budget: benchBudget, Benchmarks: []string{"gcc", "swim"}}
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationReplacement(context.Background(), cfg, []int{4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNestRule runs the STR(i)-interpretation ablation.
func BenchmarkAblationNestRule(b *testing.B) {
	cfg := expt.Config{Budget: benchBudget, Benchmarks: []string{"fpppp", "tomcatv"}}
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationNestRule(context.Background(), cfg, []int{4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the mechanisms themselves ---

// benchPipeline drives b.N instructions of swim through the full
// pipeline — interpreter feeding the detector in batches, with the
// Table-1 statistics collector and a 4-TU STR(3) speculation engine
// attached — at the given event-batch size (0 = default). time/op is
// ns/instruction.
func benchPipeline(b *testing.B, batchSize int, reference bool) {
	bm, err := dynloop.BenchmarkByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	u, err := bm.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	det := loopdet.New(loopdet.Config{Capacity: 16})
	det.AddObserver(loopstats.NewCollector())
	det.AddObserver(spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STRn(3)}))
	cpu := u.NewCPU()
	cpu.SetBatchSize(batchSize)
	cpu.SetReference(reference)
	b.ReportAllocs()
	b.ResetTimer()
	remaining := uint64(b.N)
	for remaining > 0 {
		n, err := cpu.Run(remaining, det)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 && !cpu.Halted() {
			b.Fatal("no progress")
		}
		remaining -= n
		if cpu.Halted() {
			cpu = u.NewCPU()
			cpu.SetBatchSize(batchSize)
			cpu.SetReference(reference)
		}
	}
}

// BenchmarkRun measures the full pipeline's per-instruction cost at the
// default batch size. The Minstr/s metric is the instructions-per-second
// headline BENCH_pipeline.json tracks, and allocs/op is the
// per-instruction steady-state allocation count the batch pipeline pins
// at 0.
func BenchmarkRun(b *testing.B) {
	benchPipeline(b, 0, false)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkRunReference runs the same pipeline on the interpreter's
// reference path (two-level dispatch, no predecode, no fusion). The
// gap between this and BenchmarkRun is the tentpole's win, and keeping
// both under one harness makes the A/B a single -bench invocation:
//
//	go test -run=^$ -bench='^BenchmarkRun(Reference)?$' .
func BenchmarkRunReference(b *testing.B) {
	benchPipeline(b, 0, true)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkRunBatchSize sweeps the event-batch size on the BenchmarkRun
// pipeline; it documents why DefaultBatchSize is where it is (batch=1
// reproduces the old one-dispatch-per-instruction pipeline). Throughput
// plateaus by ~256 and the working set leaves L2 as the buffer grows —
// 4096 events (~360 KiB) measured slower than 512 — so the default sits
// at the knee.
func BenchmarkRunBatchSize(b *testing.B) {
	for _, bs := range []int{1, 64, 256, 512, 1024, 2048, 4096} {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) { benchPipeline(b, bs, false) })
	}
}

// BenchmarkInterpreter measures raw interpreter throughput (no
// consumers).
func BenchmarkInterpreter(b *testing.B) {
	bm, err := dynloop.BenchmarkByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	u, err := bm.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	cpu := u.NewCPU()
	for i := 0; i < b.N; i++ {
		if _, err := cpu.Run(1, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(0)
}

// BenchmarkDetector measures the CLS per-instruction cost on a realistic
// mixed stream.
func BenchmarkDetector(b *testing.B) {
	bm, err := dynloop.BenchmarkByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	u, err := bm.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	cpu := u.NewCPU()
	det := loopdet.New(loopdet.Config{Capacity: 16})
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := cpu.Run(uint64(b.N), det); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngine measures the full pipeline (interpreter + detector +
// speculation engine) per instruction.
func BenchmarkEngine(b *testing.B) {
	bm, err := dynloop.BenchmarkByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	u, err := bm.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	cpu := u.NewCPU()
	det := loopdet.New(loopdet.Config{Capacity: 16})
	e := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STRn(3)})
	det.AddObserver(e)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := cpu.Run(uint64(b.N), det); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(e.Metrics().TPC(), "TPC")
}

// BenchmarkCLSBackEdge measures the detector's hot path: a taken
// backward branch of a resident loop (one iteration event).
func BenchmarkCLSBackEdge(b *testing.B) {
	d := loopdet.New(loopdet.Config{Capacity: 16})
	in := isa.Branch(isa.CondNEZ, 1, 10)
	ev := trace.Event{PC: 20, Instr: &in, Taken: true, Target: 10}
	d.Consume(&ev) // establish the loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Index = uint64(i)
		d.Consume(&ev)
	}
}

// BenchmarkLETLookup measures the associative-table hot path.
func BenchmarkLETLookup(b *testing.B) {
	let := looptab.NewLET(16)
	for t := isa.Addr(0); t < 16; t++ {
		let.OnExecStart(t)
		let.OnExecEnd(t, 5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		let.PredictIters(isa.Addr(i & 15))
	}
}

// BenchmarkSequences measures the input-sequence generators.
func BenchmarkSequences(b *testing.B) {
	seqs := map[string]interp.Sequence{
		"counter":   interp.Counter(0, 3),
		"uniform":   interp.Uniform(1, 100, 7),
		"geometric": interp.Geometric(1, 0.7, 0, 9),
	}
	for name, s := range seqs {
		b.Run(name, func(b *testing.B) {
			var sink int64
			for i := 0; i < b.N; i++ {
				sink += s.Next()
			}
			_ = sink
		})
	}
}

// BenchmarkHarnessEndToEnd measures a complete small run: build, run,
// flush, collect.
func BenchmarkHarnessEndToEnd(b *testing.B) {
	bm, err := dynloop.BenchmarkByName("m88ksim")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		u, err := bm.Build(1)
		if err != nil {
			b.Fatal(err)
		}
		e := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STR()})
		if _, err := harness.Run(u, harness.Config{Budget: 50_000}, e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineBranchPred runs the conventional branch-predictor
// baseline (BTFN / bimodal / gshare) over the suite.
func BenchmarkBaselineBranchPred(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.BaselineBranchPred(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var bwd float64
			for _, r := range rows {
				bwd += r.Results[2].BackwardAccuracy() // gshare
			}
			b.ReportMetric(bwd/float64(len(rows)), "gshare-bwd-%")
		}
	}
}

// BenchmarkTraceFile measures trace-file write+replay throughput.
func BenchmarkTraceFile(b *testing.B) {
	bm, err := dynloop.BenchmarkByName("m88ksim")
	if err != nil {
		b.Fatal(err)
	}
	u, err := bm.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := dynloop.NewTraceWriter(&buf, u.Prog)
	if err != nil {
		b.Fatal(err)
	}
	cpu := u.NewCPU()
	const n = 100_000
	if _, err := cpu.Run(n, w); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := dynloop.NewTraceReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Replay(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallelism measures the orchestrator's wall-clock
// speedup on the full 18-benchmark × 5-policy × 4-size grid (360 cells).
// Compare the parallel=1 and parallel=8 time/op: the acceptance target
// is ≥2× at 8 workers on a multi-core host. A fresh runner per iteration
// keeps the cache from short-circuiting the measurement.
func BenchmarkSweepParallelism(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := expt.Config{Budget: benchBudget, Parallel: workers}
				rows, err := expt.Sweep(context.Background(), cfg, expt.SweepSpec{})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(len(rows)), "cells")
				}
			}
		})
	}
}

// BenchmarkSweepFusion is the A/B of the single-traversal refactor: the
// full 360-cell sweep grid with every cell traversing its benchmark
// alone (percell) vs cells fused per benchmark into one traversal
// (fused). The fused/percell time ratio is the headline
// BENCH_sweep.json tracks; a fresh runner per iteration keeps the cell
// cache from short-circuiting the comparison.
func BenchmarkSweepFusion(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noFuse bool
	}{{"percell", true}, {"fused", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := expt.Config{Budget: benchBudget, Parallel: 1, NoFuse: mode.noFuse}
				before := harness.Traversals()
				if _, err := expt.Sweep(context.Background(), cfg, expt.SweepSpec{}); err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(harness.Traversals()-before), "traversals")
				}
			}
		})
	}
}

// BenchmarkRunnerOverhead measures the orchestrator's per-job cost with
// trivial jobs: the scheduling, caching and progress plumbing alone.
func BenchmarkRunnerOverhead(b *testing.B) {
	jobs := make([]runner.Job[int], 256)
	for i := range jobs {
		i := i
		jobs[i] = runner.Job[int]{Run: func(ctx context.Context) (int, error) { return i, nil }}
	}
	r := runner.New(runner.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Map(context.Background(), r, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceReplay is the replay tier's headline micro-benchmark:
// delivering a recorded stream into a pass by decode-only replay vs
// re-interpreting the program, same sink either way, on each event plane
// (the plain legs negotiate control-plane delivery, the -full legs force
// full Events). time/op is ns/instruction; every leg must also hold
// 0 allocs/op (pinned by TestReplayZeroAllocs, TestReplayCtlZeroAllocs
// and TestCtlSteadyStateZeroAllocs).
func BenchmarkTraceReplay(b *testing.B) {
	bm, err := dynloop.BenchmarkByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	u, err := bm.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	const n = 200_000
	a, err := dynloop.OpenTraceArchive(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	w, err := a.BeginRecord(bm.Name, 1, u.Prog)
	if err != nil {
		b.Fatal(err)
	}
	cpu := u.NewCPU()
	if _, err := cpu.Run(n, w); err != nil {
		b.Fatal(err)
	}
	if err := w.Commit(cpu.Halted()); err != nil {
		b.Fatal(err)
	}
	rec, ok := a.Lookup(bm.Name, 1)
	if !ok {
		b.Fatal("recording not installed")
	}

	// The consumer is the control-flow hash, a control-only sink: the
	// plain legs negotiate control-plane delivery (compact CtlEvents; the
	// replay side decodes the header plane without materializing value
	// fields), and the -full legs force full-Event delivery through
	// trace.ForceFullPlane, so the facet split is measured per plane.
	interpret := func(sink trace.BatchConsumer) func(b *testing.B) {
		return func(b *testing.B) {
			cpu := u.NewCPU()
			b.ReportAllocs()
			b.ResetTimer()
			remaining := uint64(b.N)
			for remaining > 0 {
				nn, err := cpu.Run(remaining, sink)
				if err != nil {
					b.Fatal(err)
				}
				if nn == 0 && !cpu.Halted() {
					b.Fatal("no progress")
				}
				remaining -= nn
				if cpu.Halted() {
					cpu = u.NewCPU()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		}
	}
	replay := func(sink trace.BatchConsumer) func(b *testing.B) {
		return func(b *testing.B) {
			d := &dynloop.TraceDecoder{}
			if _, _, err := rec.Replay(n, d, sink); err != nil { // warm the decoder
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			remaining := uint64(b.N)
			for remaining > 0 {
				chunk := remaining
				if chunk > rec.Events() {
					chunk = rec.Events()
				}
				nn, _, err := rec.Replay(chunk, d, sink)
				if err != nil {
					b.Fatal(err)
				}
				remaining -= nn
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		}
	}
	b.Run("interpret", interpret(trace.NewHash()))
	b.Run("interpret-full", interpret(trace.ForceFullPlane(trace.NewHash())))
	b.Run("replay", replay(trace.NewHash()))
	b.Run("replay-full", replay(trace.ForceFullPlane(trace.NewHash())))
	// decode isolates the codec itself (nil sink): the floor the replay
	// number converges to as consumers get cheaper.
	b.Run("decode", func(b *testing.B) {
		d := &dynloop.TraceDecoder{}
		if _, _, err := rec.Replay(n, d, nil); err != nil { // warm the decoder
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		remaining := uint64(b.N)
		for remaining > 0 {
			chunk := remaining
			if chunk > rec.Events() {
				chunk = rec.Events()
			}
			nn, _, err := rec.Replay(chunk, d, nil)
			if err != nil {
				b.Fatal(err)
			}
			remaining -= nn
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
	})
}

// BenchmarkSweepReplay is the grid-level A/B the BENCH_replay.json
// numbers come from: the full 360-cell sweep with a cold runner per
// iteration, fed by interpretation vs by a warm trace archive. The
// replay side re-runs the whole grid without a single interpreter
// traversal.
func BenchmarkSweepReplay(b *testing.B) {
	ctx := context.Background()
	base := expt.Config{Budget: benchBudget, Parallel: 1}
	run := func(b *testing.B, cfg expt.Config) {
		for i := 0; i < b.N; i++ {
			if _, err := expt.Sweep(ctx, cfg, expt.SweepSpec{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("interpret", func(b *testing.B) { run(b, base) })
	b.Run("replay", func(b *testing.B) {
		a, err := dynloop.OpenTraceArchive(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		cfg := base
		cfg.Traces = dynloop.NewTraces(a)
		if _, err := expt.Sweep(ctx, cfg, expt.SweepSpec{}); err != nil { // record once
			b.Fatal(err)
		}
		before := harness.Traversals()
		b.ResetTimer()
		run(b, cfg)
		b.StopTimer()
		b.ReportMetric(float64(harness.Traversals()-before)/float64(b.N), "traversals")
	})
}
