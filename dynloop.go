// Package dynloop is a library reproduction of "Control Speculation in
// Multithreaded Processors through Dynamic Loop Detection" (Tubella &
// González, HPCA 1998).
//
// It provides, as a pipeline of composable pieces:
//
//   - a dynamic loop detector (the paper's Current Loop Stack, §2) that
//     discovers loop executions and iterations in a retired instruction
//     stream with no compiler support;
//   - the LET/LIT loop-characterisation tables with the paper's LRU and
//     hit-ratio semantics (§2.3);
//   - a thread-level control-speculation engine for a multithreaded
//     machine model, with the IDLE, STR and STR(i) policies and the TPC
//     metric (§3);
//   - the §4 data-speculation statistics (path regularity, live-in
//     stride predictability);
//   - an execution substrate (mini-ISA, structured program builder,
//     interpreter) and 18 synthetic SPEC95-calibrated workloads; the
//     interpreter delivers the retired-instruction stream in reusable
//     zero-allocation event batches (RunConfig.BatchSize, default 1024),
//     so consumers cost one interface call per batch, not per
//     instruction;
//   - experiment drivers regenerating every table and figure of the
//     paper's evaluation;
//   - a parallel experiment orchestrator (bounded worker pool, keyed
//     result cache, per-job progress) that fans the experiment cells
//     across GOMAXPROCS — see RunAll, RunSweep and RunnerConfig; and
//   - a pass framework (Pass, MultiRun, NewObserverPass) that broadcasts
//     one traversal of a benchmark's instruction stream to any number of
//     independent analyses, so a whole sweep column costs one
//     interpretation instead of one per cell — the experiment drivers
//     fuse their (benchmark, budget) groups this way automatically; and
//   - a grid-serving subsystem: a crash-safe on-disk result store that
//     plugs in behind the orchestrator's cache (OpenStore,
//     NewStoreCache), and an HTTP daemon + client (NewServer,
//     NewClient, `dynloop serve`) that serve precomputed grids to
//     remote sweeps byte-identically to local runs; and
//   - a declarative grid layer (GridSpec, RunGrid, GridNames): every
//     paper section is a registered spec, and a user-authored JSON
//     spec sweeping any axes — benchmarks, budgets, seeds, CLS
//     capacities, TU counts, policies, ablation knobs — executes
//     through the same fusion/cache/store/serving machinery.
//
// Quick start:
//
//	bm, _ := dynloop.BenchmarkByName("swim")
//	unit, _ := bm.Build(1)
//	stats := dynloop.NewLoopStats()
//	engine := dynloop.NewEngine(dynloop.EngineConfig{TUs: 4, Policy: dynloop.STR()})
//	res, _ := dynloop.Run(unit, dynloop.RunConfig{Budget: 4_000_000}, stats, engine)
//	fmt.Println(res.Executed, stats.Summary().ItersPerExec, engine.Metrics().TPC())
//
// See the examples directory for runnable programs and DESIGN.md for the
// mapping from the paper to the modules.
package dynloop

import (
	"context"
	"io"

	"dynloop/internal/branchpred"
	"dynloop/internal/builder"
	"dynloop/internal/client"
	"dynloop/internal/datapred"
	"dynloop/internal/expt"
	"dynloop/internal/grid"
	"dynloop/internal/harness"
	"dynloop/internal/loopdet"
	"dynloop/internal/loopstats"
	"dynloop/internal/looptab"
	"dynloop/internal/program"
	"dynloop/internal/runner"
	"dynloop/internal/server"
	"dynloop/internal/spec"
	"dynloop/internal/store"
	"dynloop/internal/trace"
	"dynloop/internal/tracefile"
	"dynloop/internal/wire"
	"dynloop/internal/workload"
)

// Core pipeline types.
type (
	// Unit is a built program plus its input-sequence factories.
	Unit = builder.Unit
	// RunConfig parametrises a pipeline run.
	RunConfig = harness.Config
	// RunResult reports what a run did.
	RunResult = harness.Result
	// Detector is the Current Loop Stack mechanism (§2.2).
	Detector = loopdet.Detector
	// DetectorConfig parametrises a Detector.
	DetectorConfig = loopdet.Config
	// Exec is one loop execution tracked by the detector.
	Exec = loopdet.Exec
	// Observer receives loop events from the detector.
	Observer = loopdet.Observer
	// EndReason says why a loop execution ended.
	EndReason = loopdet.EndReason
)

// Workloads.
type (
	// Benchmark is one synthetic SPEC95 stand-in workload.
	Benchmark = workload.Benchmark
	// PaperRow carries the published reference numbers of a benchmark.
	PaperRow = workload.PaperRow
)

// Speculation engine (§3).
type (
	// Engine is the thread-speculation machine model.
	Engine = spec.Engine
	// EngineConfig parametrises an Engine.
	EngineConfig = spec.Config
	// EngineMetrics are the engine's aggregate results.
	EngineMetrics = spec.Metrics
	// Policy selects IDLE, STR or STR(i).
	Policy = spec.Policy
)

// Statistics collectors.
type (
	// LoopStats collects the paper's Table 1 statistics.
	LoopStats = loopstats.Collector
	// LoopStatsSummary is one Table 1 row.
	LoopStatsSummary = loopstats.Summary
	// TableTracker measures LET/LIT hit ratios (§2.3.1, Figure 4).
	TableTracker = looptab.Tracker
	// DataStats collects the §4 data-speculation statistics (Figure 8).
	DataStats = datapred.Collector
	// DataStatsSummary is the Figure 8 result set.
	DataStatsSummary = datapred.Summary
)

// Experiments and the parallel orchestrator.
type (
	// ExperimentConfig parametrises the table/figure drivers, including
	// the worker bound (Parallel) and an optional shared Runner.
	ExperimentConfig = expt.Config
	// Runner is the parallel experiment orchestrator: a bounded worker
	// pool with a keyed result cache and per-job progress events.
	Runner = runner.Runner
	// RunnerConfig parametrises a Runner.
	RunnerConfig = runner.Config
	// RunnerEvent is one per-job progress notification.
	RunnerEvent = runner.Event
	// RunnerStats are the runner-lifetime counters (jobs executed,
	// cache hits, coalesced waits, failures).
	RunnerStats = runner.Stats
	// SweepSpec selects the policy × machine-size grid RunSweep expands.
	SweepSpec = expt.SweepSpec
	// SweepRow is one cell of a RunSweep grid.
	SweepRow = expt.SweepRow
)

// The declarative grid layer: every experiment is a grid.Spec — axes
// (benchmarks, budgets, seeds, CLS capacities, TU counts, policies,
// ablation knobs), a metric selection and a render layout — compiled
// onto the cell/fusion/cache/store machinery. The paper's tables,
// figures, baselines and ablations are registered specs (GridNames);
// user-authored specs execute through the identical path.
type (
	// GridSpec declares an experiment grid (see internal/grid.Spec for
	// the axes and their JSON forms).
	GridSpec = grid.Spec
	// GridEntry is one registered grid: its canonical spec plus the
	// section renderer.
	GridEntry = grid.Entry
	// GridResult is an executed grid: resolved spec, cells, one value
	// per cell.
	GridResult = grid.Result
	// GridExclusion is one point of a GridSpec's exclusion-table axis.
	GridExclusion = grid.ExclusionSpec
	// GridRequest asks a Server to execute a grid (by registered name
	// or inline spec).
	GridRequest = wire.GridRequest
)

// RunGrid executes a declarative grid spec: axes compile to versioned
// cells, cached cells are served from memory or the disk store, and
// missing cells fuse per (benchmark, budget, seed) group into single
// traversals. Values return in canonical cell order, byte-identical at
// any worker count.
func RunGrid(ctx context.Context, cfg ExperimentConfig, s GridSpec) (*GridResult, error) {
	return grid.Run(ctx, cfg, s)
}

// GridNames lists the registered grids (the paper's sections plus the
// sweep), sorted.
func GridNames() []string { return grid.Names() }

// GridByName resolves a registered grid.
func GridByName(name string) (GridEntry, bool) { return grid.Lookup(name) }

// GridResultFrom rebuilds a GridResult from a value stream computed
// elsewhere (e.g. a daemon's /v1/grid response), re-validating shape
// and types against the spec's deterministic expansion.
func GridResultFrom(cfg ExperimentConfig, s GridSpec, values []any) (*GridResult, error) {
	return grid.ResultFrom(cfg, s, values)
}

// RenderGrid formats a grid result: registered specs render their paper
// section, ad-hoc specs render through the generic table/CSV/JSON
// layout.
func RenderGrid(res *GridResult) (string, error) { return grid.RenderResult(res) }

// NewRunner returns a parallel experiment orchestrator to share across
// experiment drivers: the worker bound pools and identical cells are
// computed once. Set it as ExperimentConfig.Runner.
func NewRunner(cfg RunnerConfig) *Runner { return runner.New(cfg) }

// RunAll regenerates every table, figure, baseline and ablation of the
// paper's evaluation through one shared orchestrator and returns the
// rendered report. Cells are fanned across ExperimentConfig.Parallel
// workers (0 = GOMAXPROCS); the output is byte-identical at any worker
// count.
func RunAll(ctx context.Context, cfg ExperimentConfig) (string, error) {
	return expt.All(ctx, cfg)
}

// RunSweep runs an arbitrary benchmark × policy × machine-size grid
// through the orchestrator and returns one row per cell.
func RunSweep(ctx context.Context, cfg ExperimentConfig, sw SweepSpec) ([]SweepRow, error) {
	return expt.Sweep(ctx, cfg, sw)
}

// RenderSweep formats a RunSweep grid as a table.
func RenderSweep(rows []SweepRow) string { return expt.RenderSweep(rows) }

// Benchmarks returns the 18 synthetic SPEC95 workloads, sorted by name.
func Benchmarks() []Benchmark { return workload.All() }

// BenchmarkNames returns the workload names, sorted.
func BenchmarkNames() []string { return workload.Names() }

// BenchmarkByName looks a workload up by its SPEC95 name.
func BenchmarkByName(name string) (Benchmark, error) { return workload.ByName(name) }

// NewProgram returns a structured program builder (the codegen DSL used
// by the workloads; see package documentation for the register and
// memory conventions it maintains).
func NewProgram(name string, seed uint64) *builder.Builder { return builder.New(name, seed) }

// RandomProgram generates a random structured program for property
// testing and fuzzing.
func RandomProgram(seed uint64) (*Unit, error) {
	return builder.Random(seed, builder.RandomOpt{})
}

// Run executes a unit through a fresh detector with the observers
// attached (see harness.Run).
func Run(u *Unit, cfg RunConfig, observers ...Observer) (RunResult, error) {
	return harness.Run(u, cfg, observers...)
}

// The pass framework: one traversal, many analyses.
type (
	// Pass is one complete analysis lifecycle over an event stream
	// (Init / ConsumeBatch / Finalize). Detectors with observers
	// attached (NewObserverPass) and the branch-prediction baseline are
	// passes; MultiRun broadcasts one traversal to any number of them.
	Pass = trace.Pass
	// MultiRunConfig parametrises MultiRun.
	MultiRunConfig = harness.MultiConfig
	// MultiRunResult reports what a fused run did.
	MultiRunResult = harness.MultiResult
)

// MultiRun executes the unit once, broadcasting every event batch to all
// passes, so N independent analyses cost one traversal of the stream
// instead of N. Each pass owns whatever detector and tables it needs,
// so results are identical to running each pass alone (see
// harness.MultiRun and the ExampleMultiRun godoc).
func MultiRun(u *Unit, cfg MultiRunConfig, passes ...Pass) (MultiRunResult, error) {
	return harness.MultiRun(u, cfg, passes...)
}

// NewObserverPass bundles a fresh detector with the given observers into
// one schedulable pass. clsCapacity follows RunConfig.CLSCapacity's
// convention (0 = the paper's 16, negative = unbounded). Keep the
// returned detector for its stats; keep the observers for their results.
func NewObserverPass(clsCapacity int, observers ...Observer) *Detector {
	return harness.NewObserverPass(clsCapacity, observers...)
}

// AsPass adapts a plain batch consumer (e.g. a trace.Hash or Counter)
// into a Pass with no-op lifecycle hooks, for fusing raw-stream
// consumers into a MultiRun traversal.
func AsPass(c TraceBatchConsumer) Pass { return trace.AsPass(c) }

// TraceBatchConsumer receives retired-instruction events in batches (see
// trace.BatchConsumer for the buffer-lifetime rules).
type TraceBatchConsumer = trace.BatchConsumer

// NewDetector returns a standalone loop detector; feed it trace events
// directly when not using Run.
func NewDetector(cfg DetectorConfig) *Detector { return loopdet.New(cfg) }

// NewLoopStats returns a Table-1 statistics collector.
func NewLoopStats() *LoopStats { return loopstats.NewCollector() }

// NewTableTracker returns a LET/LIT hit-ratio tracker with the given
// table capacities (0 = unbounded).
func NewTableTracker(letCapacity, litCapacity int) *TableTracker {
	return looptab.NewTracker(letCapacity, litCapacity)
}

// NewEngine returns a speculation engine.
func NewEngine(cfg EngineConfig) *Engine { return spec.NewEngine(cfg) }

// NewDataStats returns a Figure-8 data-speculation collector.
func NewDataStats() *DataStats { return datapred.NewCollector(datapred.Config{}) }

// Idle returns the IDLE policy (§3.1.2).
func Idle() Policy { return spec.Idle() }

// STR returns the stride policy (§3.1.2).
func STR() Policy { return spec.STR() }

// STRn returns the STR(i) policy (§3.1.2).
func STRn(i int) Policy { return spec.STRn(i) }

// Trace recording and replay (the ATOM-methodology analogue): record a
// run once, then drive the detector and its consumers from the file.
type (
	// TraceWriter streams events to a trace file.
	TraceWriter = tracefile.Writer
	// TraceReader replays a recorded trace file.
	TraceReader = tracefile.Reader
)

// NewTraceWriter writes a trace-file header (embedding the program) and
// returns a writer that implements the trace consumer interface.
func NewTraceWriter(w io.Writer, p *program.Program) (*TraceWriter, error) {
	return tracefile.NewWriter(w, p)
}

// NewTraceReader opens a recorded trace for replay.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	return tracefile.NewReader(r)
}

// The replay tier: a directory archive of CRC-framed recordings, one
// per (benchmark, seed), and the record-or-replay orchestration that
// serves MultiRun-shaped work from it. Set ExperimentConfig.Traces (or
// pass -traces to the CLI) and cold groups record once while every
// later group replays the file — a pure decode, byte-identical results,
// no interpretation.
type (
	// TraceArchive is the on-disk recording archive with its in-memory
	// validated index.
	TraceArchive = tracefile.Archive
	// TraceRecording is one loaded (benchmark, seed) recording.
	TraceRecording = tracefile.Recording
	// TraceDecoder is a reusable replay scratch buffer; a warmed decoder
	// makes TraceRecording.Replay allocation-free.
	TraceDecoder = tracefile.Decoder
	// Traces is the replay tier over an archive; wire it into an
	// ExperimentConfig.
	Traces = harness.Traces
)

// OpenTraceArchive opens (creating if needed) a trace-archive
// directory, validating every recording and repairing a torn tail on
// the newest file.
func OpenTraceArchive(dir string) (*TraceArchive, error) {
	return tracefile.OpenArchive(dir)
}

// NewTraces wraps an opened archive in the replay tier.
func NewTraces(a *TraceArchive) *Traces { return harness.NewTraces(a) }

// The grid-serving subsystem: a persistent result store, the HTTP
// daemon behind `dynloop serve`, and its Go client. Cell results cross
// the store and the wire in the same versioned binary frames
// (internal/codec), so a persisted or remotely computed cell is
// byte-identical to a local one.
type (
	// Store is the content-addressed, crash-safe on-disk result store:
	// append-only segment files with CRC-framed records, addressed by
	// the cell's full configuration key.
	Store = store.Store
	// StoreOptions tune a Store.
	StoreOptions = store.Options
	// StoreStats are the store's on-disk and lifetime counters.
	StoreStats = store.Stats
	// RunnerCache is the pluggable second result tier behind a Runner's
	// in-memory cache (see NewStoreCache).
	RunnerCache = runner.Cache
	// Server is the grid-serving HTTP daemon over a shared Runner and
	// an optional Store.
	Server = server.Server
	// ServerConfig parametrises a Server.
	ServerConfig = server.Config
	// Client talks to a Server.
	Client = client.Client
	// SweepRequest asks a Server for one benchmark × policy × TUs grid.
	SweepRequest = wire.SweepRequest
)

// OpenStore opens (creating if needed) an on-disk result store, scans
// its segments to rebuild the index, and recovers from a torn tail
// left by a crash.
func OpenStore(dir string, opts StoreOptions) (*Store, error) { return store.Open(dir, opts) }

// NewStoreCache adapts a Store into a Runner's second cache tier: set
// it as RunnerConfig.Cache and every computed cell persists, every
// repeat cell is served from disk without a traversal.
func NewStoreCache(s *Store) RunnerCache { return store.NewCache(s) }

// NewServer builds a grid-serving daemon; serve its Handler (or call
// ListenAndServe) to accept remote sweeps over the shared Runner.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// NewClient returns a client for a daemon at base (e.g.
// "http://127.0.0.1:9090"); nil selects http.DefaultClient.
func NewClient(base string) *Client { return client.New(base, nil) }

// NewOracleRecorder returns an observer that records every execution's
// true iteration count, for EngineConfig.OracleIters (perfect-prediction
// upper-bound studies).
func NewOracleRecorder() *spec.OracleRecorder { return spec.NewOracleRecorder() }

// NewBranchPredictorSuite returns the conventional branch-prediction
// baseline (BTFN, bimodal, gshare) as a raw-stream consumer — attach it
// through RunConfig.PreDetector to score it on any workload.
func NewBranchPredictorSuite() *branchpred.Collector { return branchpred.DefaultSuite() }
