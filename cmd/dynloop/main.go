// Command dynloop explores the reproduction from the terminal: list the
// workloads, run the loop detector over one of them, run the thread
// speculation model, or regenerate any of the paper's tables and figures.
//
// Usage:
//
//	dynloop list
//	dynloop run    -bench swim [-n 4000000] [-seed 1]
//	dynloop spec   -bench swim [-tus 4] [-policy str3] [-n 4000000]
//	dynloop data   -bench li [-n 4000000]
//	dynloop analyze -bench swim [-passes stats,spec,data,branch,task,tables] [-shards K]
//	dynloop disasm -bench perl [-max 80]
//	dynloop experiment table1|table2|fig4|fig5|fig6|fig7|fig8|ablations|all
//	                   [-n 4000000] [-bench a,b,c] [-seed 1] [-parallel N] [-progress]
//	                   [-store DIR]
//	dynloop sweep      [-bench a,b] [-policy str,str3] [-tus 2,4,8] [-parallel N]
//	                   [-store DIR] [-remote URL]
//	dynloop grid       -spec FILE | -name NAME | -list [-remote URL] [-store DIR]
//	                   [-bench a,b] [-n N] [-seed N] [-parallel N] [-format table|csv|json]
//	dynloop serve      [-addr 127.0.0.1:9090] [-store DIR] [-parallel N]
//	                   [-log text|json|off] [-pprof 127.0.0.1:6060]
//	dynloop soak       -remote URL [-clients N] [-duration 10s] [-o FILE]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for serve -pprof
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"dynloop"
	"dynloop/internal/client"
	"dynloop/internal/expt"
	"dynloop/internal/harness"
	"dynloop/internal/interp"
	"dynloop/internal/report"
	"dynloop/internal/runner"
	"dynloop/internal/server"
	"dynloop/internal/store"
	"dynloop/internal/taskpred"
	"dynloop/internal/trace"
	"dynloop/internal/tracefile"
	"dynloop/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Ctrl-C cancels in-flight experiment grids instead of killing the
	// process mid-table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "spec":
		err = cmdSpec(os.Args[2:])
	case "data":
		err = cmdData(os.Args[2:])
	case "disasm":
		err = cmdDisasm(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "experiment":
		err = cmdExperiment(ctx, os.Args[2:])
	case "sweep":
		err = cmdSweep(ctx, os.Args[2:])
	case "grid":
		err = cmdGrid(ctx, os.Args[2:])
	case "grids":
		err = cmdGrid(ctx, append([]string{"-list"}, os.Args[2:]...))
	case "serve":
		err = cmdServe(ctx, os.Args[2:])
	case "soak":
		err = cmdSoak(ctx, os.Args[2:])
	case "trace":
		err = cmdTrace(ctx, os.Args[2:])
	case "store":
		err = cmdStore(ctx, os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dynloop: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynloop:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `dynloop — dynamic loop detection & thread speculation (HPCA'98 reproduction)

commands:
  list                               list the 18 SPEC95-calibrated workloads
  run    -bench NAME [-n N]          run the loop detector, print Table-1 stats
  spec   -bench NAME [-tus K] [-policy idle|str|str1|str2|str3] [-n N]
                                     run the speculation model, print metrics
  data   -bench NAME [-n N]          run the Figure-8 data-speculation stats
  analyze -bench NAME [-passes stats,spec,data,branch,task,tables] [-shards K]
                                     run several analyses as fused passes over
                                     ONE traversal of the benchmark's stream
  disasm -bench NAME [-max LINES]    disassemble the generated program
  experiment WHAT [-n N] [-bench a,b,...] [-parallel N] [-progress]
                                     regenerate paper tables/figures:
                                     table1 table2 fig4 fig5 fig6 fig7 fig8
                                     baseline ablations all
  sweep  [-bench a,b,...] [-policy p1,p2,...] [-tus 2,4,...]
         [-n N] [-parallel N] [-progress] [-remote URL]
         [-shards K] [-reference] [-fullplanes]
                                     run an arbitrary benchmark × policy × TUs
                                     grid through the parallel orchestrator,
                                     locally or on a dynloop serve daemon
  grid   -spec FILE | -name NAME | -list
         [-bench a,b,...] [-n N] [-seed N] [-parallel N] [-progress]
         [-store DIR] [-remote URL] [-format table|csv|json]
         [-shards K] [-reference] [-fullplanes]
                                     execute a declarative grid spec — a JSON
                                     file sweeping any axes (benchmarks,
                                     budgets, seeds, CLS, TUs, policies,
                                     ablation knobs) or a registered spec
                                     (table1, fig7, ablation/cls, ...; -list
                                     shows them) — locally or on a daemon
  serve  [-addr HOST:PORT] [-store DIR] [-parallel N] [-max-inflight N]
         [-warm specs|all] [-warm-bench a,b] [-queue-wait D]
         [-compact-ratio F] [-log text|json|off] [-pprof HOST:PORT]
                                     run the grid-serving HTTP daemon: clients
                                     share one worker pool, one result cache
                                     and one persistent store (SIGINT shuts
                                     down gracefully); exposes Prometheus
                                     metrics at GET /metrics, structured
                                     request logs with -log, and net/http/pprof
                                     on a separate -pprof listener
  soak   -remote URL [-clients N] [-duration D] [-o FILE]
                                     sustain N concurrent clients against a
                                     daemon, then report rps and p50/p99 from
                                     the daemon's /metrics histograms and
                                     check the scrape reconciles with /v1/stats
  trace  -bench NAME -o FILE [-n N]  record an instruction trace to a file
  trace  record -traces DIR [-bench a,b] [-n N] [-seed N]
                                     warm a trace archive (one recording per
                                     benchmark; covered benchmarks replay)
  trace  ls|verify -traces DIR       list / fully verify a trace archive
  store  ls|stats -store DIR         list segments / print store counters
  store  verify -store DIR           audit every record CRC and every index
                                     sidecar against the data it indexes
  store  compact -store DIR          rewrite live records densely, reclaim
                                     superseded space
  store  gen -store DIR [-keys N] [-rounds R] [-valbytes B] [-seed S]
                                     write a synthetic garbage-heavy store
                                     (smoke tests, compaction benchmarks)
  replay -i FILE [-tus K] [-policy P]
                                     drive the detector + engine from a trace

experiment, sweep, grid and serve also take -store DIR to persist every
computed cell in an on-disk result store and serve repeat cells from it,
and -traces DIR to record each (benchmark, seed) instruction stream once
and replay it for every later cold group instead of re-interpreting;
analyze, experiment, sweep, grid and serve take -cpuprofile FILE /
-memprofile FILE to dump pprof profiles of the run.
`)
}

func cmdList() error {
	t := report.NewTable("Workloads (paper values: Table 1 & 2 of Tubella/González HPCA'98)",
		"name", "suite", "paper TPC@4", "paper hit%", "description")
	for _, bm := range dynloop.Benchmarks() {
		t.AddRow(bm.Name, bm.Suite, bm.Paper.TPC4, bm.Paper.HitRatio, bm.Description)
	}
	fmt.Print(t.String())
	return nil
}

// benchFlags adds the common -bench/-n/-seed/-batch flags.
func benchFlags(fs *flag.FlagSet) (bench *string, n *uint64, seed *uint64, batch *int) {
	bench = fs.String("bench", "", "benchmark name (see: dynloop list)")
	n = fs.Uint64("n", expt.DefaultBudget, "dynamic instruction budget")
	seed = fs.Uint64("seed", 1, "workload input seed")
	batch = fs.Int("batch", 0, "event-batch size (0 = default 1024; results are identical at any size)")
	return
}

func buildBench(name string, seed uint64) (*dynloop.Unit, error) {
	if name == "" {
		return nil, fmt.Errorf("missing -bench (try: dynloop list)")
	}
	bm, err := dynloop.BenchmarkByName(name)
	if err != nil {
		return nil, err
	}
	return bm.Build(seed)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	bench, n, seed, batch := benchFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	u, err := buildBench(*bench, *seed)
	if err != nil {
		return err
	}
	stats := dynloop.NewLoopStats()
	res, err := dynloop.Run(u, dynloop.RunConfig{Budget: *n, BatchSize: *batch}, stats)
	if err != nil {
		return err
	}
	s := stats.Summary()
	ds := res.Detector.Stats()
	t := report.NewTable(fmt.Sprintf("%s: %d instructions", *bench, res.Executed),
		"metric", "value")
	t.AddRow("static loops", s.StaticLoops)
	t.AddRow("executions", s.Execs)
	t.AddRow("iterations", s.Iters)
	t.AddRow("iter/exec", s.ItersPerExec)
	t.AddRow("instr/iter", s.InstrPerIter)
	t.AddRow("avg nesting", s.AvgNesting)
	t.AddRow("max nesting", s.MaxNesting)
	t.AddRow("in-loop fraction", s.InLoopFrac)
	t.AddRow("one-shot executions", ds.OneShots)
	t.AddRow("CLS evictions", ds.Evictions)
	fmt.Print(t.String())
	return nil
}

func parsePolicy(s string) (dynloop.Policy, error) {
	switch strings.ToLower(s) {
	case "idle":
		return dynloop.Idle(), nil
	case "str":
		return dynloop.STR(), nil
	case "str1":
		return dynloop.STRn(1), nil
	case "str2":
		return dynloop.STRn(2), nil
	case "str3":
		return dynloop.STRn(3), nil
	default:
		return dynloop.Policy{}, fmt.Errorf("unknown policy %q (idle|str|str1|str2|str3)", s)
	}
}

func cmdSpec(args []string) error {
	fs := flag.NewFlagSet("spec", flag.ExitOnError)
	bench, n, seed, batch := benchFlags(fs)
	tus := fs.Int("tus", 4, "thread units (0 = infinite machine)")
	polName := fs.String("policy", "str3", "speculation policy")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pol, err := parsePolicy(*polName)
	if err != nil {
		return err
	}
	u, err := buildBench(*bench, *seed)
	if err != nil {
		return err
	}
	e := dynloop.NewEngine(dynloop.EngineConfig{TUs: *tus, Policy: pol})
	res, err := dynloop.Run(u, dynloop.RunConfig{Budget: *n, BatchSize: *batch}, e)
	if err != nil {
		return err
	}
	m := e.Metrics()
	t := report.NewTable(fmt.Sprintf("%s: %s, %d TUs, %d instructions", *bench, pol, *tus, res.Executed),
		"metric", "value")
	t.AddRow("TPC", m.TPC())
	t.AddRow("cycles", m.Cycles)
	t.AddRow("speculation events", m.SpecEvents)
	t.AddRow("threads spawned", m.ThreadsSpawned)
	t.AddRow("threads promoted", m.ThreadsPromoted)
	t.AddRow("threads squashed", m.ThreadsSquashed)
	t.AddRow("threads flushed", m.ThreadsFlushed)
	t.AddRow("threads/spec", m.ThreadsPerSpec())
	t.AddRow("hit ratio %", m.HitRatio())
	t.AddRow("instr to verif", m.InstrToVerif())
	fmt.Print(t.String())
	return nil
}

func cmdData(args []string) error {
	fs := flag.NewFlagSet("data", flag.ExitOnError)
	bench, n, seed, batch := benchFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	u, err := buildBench(*bench, *seed)
	if err != nil {
		return err
	}
	c := dynloop.NewDataStats()
	res, err := dynloop.Run(u, dynloop.RunConfig{Budget: *n, BatchSize: *batch}, c)
	if err != nil {
		return err
	}
	s := c.Summary()
	t := report.NewTable(fmt.Sprintf("%s: data speculation statistics, %d instructions", *bench, res.Executed),
		"metric", "value")
	t.AddRow("loops with iterations", s.Loops)
	t.AddRow("evaluated iterations", s.Iters)
	t.AddRow("same path %", s.SamePathPct)
	t.AddRow("live-in regs predicted %", s.LrPredPct)
	t.AddRow("live-in mem predicted %", s.LmPredPct)
	t.AddRow("all regs correct %", s.AllLrPct)
	t.AddRow("all mem correct %", s.AllLmPct)
	t.AddRow("all data correct %", s.AllDataPct)
	fmt.Print(t.String())
	return nil
}

// cmdAnalyze runs several analyses as fused passes over one traversal of
// a benchmark's instruction stream — the CLI surface of the pass
// framework (dynloop.MultiRun).
func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	bench, n, seed, batch := benchFlags(fs)
	passNames := fs.String("passes", "stats,spec,data,branch,task,tables",
		"comma-separated analyses to fuse (stats,spec,data,branch,task,tables)")
	tus := fs.Int("tus", 4, "thread units for the spec pass")
	polName := fs.String("policy", "str3", "speculation policy for the spec pass")
	shards := fs.Int("shards", 0, "fan the passes across K goroutines (0/1 = inline)")
	profile := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfile, err := profile()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfile(); err != nil {
			fmt.Fprintln(os.Stderr, "dynloop: profile:", err)
		}
	}()
	u, err := buildBench(*bench, *seed)
	if err != nil {
		return err
	}
	var passes []dynloop.Pass
	var printers []func()
	for _, name := range strings.Split(*passNames, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "stats":
			stats := dynloop.NewLoopStats()
			det := dynloop.NewObserverPass(0, stats)
			passes = append(passes, det)
			printers = append(printers, func() {
				s, ds := stats.Summary(), det.Stats()
				t := report.NewTable("loop statistics (Table 1)", "metric", "value")
				t.AddRow("static loops", s.StaticLoops)
				t.AddRow("iter/exec", s.ItersPerExec)
				t.AddRow("instr/iter", s.InstrPerIter)
				t.AddRow("avg nesting", s.AvgNesting)
				t.AddRow("max nesting", s.MaxNesting)
				t.AddRow("one-shot executions", ds.OneShots)
				fmt.Print(t.String())
			})
		case "spec":
			pol, err := parsePolicy(*polName)
			if err != nil {
				return err
			}
			e := dynloop.NewEngine(dynloop.EngineConfig{TUs: *tus, Policy: pol})
			passes = append(passes, dynloop.NewObserverPass(0, e))
			printers = append(printers, func() {
				m := e.Metrics()
				t := report.NewTable(fmt.Sprintf("speculation (%s, %d TUs)", pol, *tus), "metric", "value")
				t.AddRow("TPC", m.TPC())
				t.AddRow("hit ratio %", m.HitRatio())
				t.AddRow("threads/spec", m.ThreadsPerSpec())
				fmt.Print(t.String())
			})
		case "data":
			c := dynloop.NewDataStats()
			passes = append(passes, dynloop.NewObserverPass(0, c))
			printers = append(printers, func() {
				s := c.Summary()
				t := report.NewTable("data speculation (Figure 8)", "metric", "value")
				t.AddRow("same path %", s.SamePathPct)
				t.AddRow("live-in regs predicted %", s.LrPredPct)
				t.AddRow("live-in mem predicted %", s.LmPredPct)
				t.AddRow("all data correct %", s.AllDataPct)
				fmt.Print(t.String())
			})
		case "branch":
			suite := dynloop.NewBranchPredictorSuite()
			passes = append(passes, suite)
			printers = append(printers, func() {
				t := report.NewTable("branch-prediction baseline", "predictor", "accuracy %", "backward %")
				for _, r := range suite.Results() {
					t.AddRow(r.Name, r.Accuracy(), r.BackwardAccuracy())
				}
				fmt.Print(t.String())
			})
		case "task":
			tp := taskpred.New(taskpred.Config{})
			passes = append(passes, dynloop.NewObserverPass(0, tp))
			printers = append(printers, func() {
				acc, scored := tp.Accuracy()
				t := report.NewTable("next-task prediction baseline", "metric", "value")
				t.AddRow("next-task %", acc)
				t.AddRow("scored", scored)
				fmt.Print(t.String())
			})
		case "tables":
			tr := dynloop.NewTableTracker(16, 16)
			passes = append(passes, dynloop.NewObserverPass(0, tr))
			printers = append(printers, func() {
				let, _ := tr.LET.HitRatio()
				lit, _ := tr.LIT.HitRatio()
				t := report.NewTable("LET/LIT tables (16 entries)", "table", "hit %")
				t.AddRow("LET", 100*let)
				t.AddRow("LIT", 100*lit)
				fmt.Print(t.String())
			})
		default:
			return fmt.Errorf("unknown pass %q (stats|spec|data|branch|task|tables)", name)
		}
	}
	res, err := dynloop.MultiRun(u, dynloop.MultiRunConfig{Budget: *n, BatchSize: *batch, Shards: *shards}, passes...)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d instructions, %d passes fused into 1 traversal (%d batches)\n",
		*bench, res.Executed, len(passes), res.Batches)
	for _, p := range printers {
		p()
	}
	return nil
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	bench, _, seed, _ := benchFlags(fs)
	maxLines := fs.Int("max", 60, "maximum lines to print (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	u, err := buildBench(*bench, *seed)
	if err != nil {
		return err
	}
	d := u.Prog.Disassemble()
	if *maxLines > 0 {
		lines := strings.SplitAfter(d, "\n")
		if len(lines) > *maxLines {
			lines = append(lines[:*maxLines], fmt.Sprintf("... (%d more lines)\n", len(lines)-*maxLines))
		}
		d = strings.Join(lines, "")
	}
	fmt.Print(d)
	return nil
}

// orchestrator bundles what parallelFlags resolves: the shared Runner,
// the optional replay tier over a trace archive, and the cleanup that
// closes the store.
type orchestrator struct {
	runner *runner.Runner
	traces *harness.Traces
	close  func()
}

// deliveryFlags adds the delivery-only knobs shared by sweep and grid —
// none of them can change results (they are excluded from cell keys;
// see grid.Config), so they exist for A/B comparison and smoke gating.
func deliveryFlags(fs *flag.FlagSet) func(cfg *expt.Config) {
	shards := fs.Int("shards", 0, "fan each fused traversal's passes across K goroutines (0/1 = inline; results identical)")
	reference := fs.Bool("reference", false, "force the reference interpreter path — no predecode, no fusion (results identical)")
	fullPlanes := fs.Bool("fullplanes", false, "force full-Event delivery to control-plane consumers (results identical)")
	return func(cfg *expt.Config) {
		cfg.Shards = *shards
		cfg.Reference = *reference
		cfg.FullPlanes = *fullPlanes
	}
}

// parallelFlags adds the orchestrator flags shared by experiment, sweep
// and grid, returning the parsed progress flag and a resolver that
// builds the shared Runner (with the progress stream, the on-disk
// result store when -store is given, and the trace-archive replay tier
// when -traces is given, attached). Call the orchestrator's close when
// the command is done.
func parallelFlags(fs *flag.FlagSet) (*bool, func() (*orchestrator, error)) {
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
	progress := fs.Bool("progress", false, "stream per-job progress to stderr")
	storeDir := fs.String("store", "", "persist results in this on-disk store directory (warm runs skip computed cells)")
	tracesDir := fs.String("traces", "", "record/replay instruction streams in this trace-archive directory (cold groups record once, later groups replay instead of interpreting)")
	return progress, func() (*orchestrator, error) {
		rc := runner.Config{Workers: *parallel}
		if *progress {
			rc.OnEvent = progressPrinter()
		}
		o := &orchestrator{close: func() {}}
		if *storeDir != "" {
			st, err := store.Open(*storeDir, store.Options{})
			if err != nil {
				return nil, err
			}
			rc.Cache = store.NewCache(st)
			o.close = func() {
				if err := st.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "dynloop: store:", err)
				}
			}
		}
		if *tracesDir != "" {
			arch, err := tracefile.OpenArchive(*tracesDir)
			if err != nil {
				o.close()
				return nil, err
			}
			o.traces = harness.NewTraces(arch)
		}
		o.runner = runner.New(rc)
		return o, nil
	}
}

// progressPrinter streams per-job progress events to stderr.
func progressPrinter() func(runner.Event) {
	return func(ev runner.Event) {
		switch ev.Kind {
		case runner.JobDone:
			fmt.Fprintf(os.Stderr, "[%4d done] %s (%s)\n", ev.Completed, ev.Label, ev.Elapsed.Round(time.Millisecond))
		case runner.JobCached:
			fmt.Fprintf(os.Stderr, "[%4d done] %s (cached)\n", ev.Completed, ev.Label)
		case runner.JobFailed:
			fmt.Fprintf(os.Stderr, "[   failed] %s: %v\n", ev.Label, ev.Err)
		}
	}
}

// printRunnerStats reports what the orchestrator did, when -progress is
// on. seed, when non-zero, is the run's default workload input seed (a
// spec may additionally sweep explicit seeds); the daemon passes 0 — it
// serves many seeds, none of them "the" seed of the process.
func printRunnerStats(r *runner.Runner, progress bool, seed uint64) {
	if !progress {
		return
	}
	s := r.Stats()
	seedNote := ""
	if seed != 0 {
		seedNote = fmt.Sprintf(", seed %d", seed)
	}
	fmt.Fprintf(os.Stderr, "runner: %d jobs, %d executed, %d fused group runs on %d workers, %d cache hits, %d coalesced, %d disk hits, %d disk puts, %d trace replays, %d trace records%s\n",
		s.Submitted, s.Executed, s.GroupRuns, r.Workers(), s.CacheHits, s.Coalesced, s.DiskHits, s.DiskPuts, s.ReplayRuns, s.RecordRuns, seedNote)
	if s.TierErrors > 0 {
		fmt.Fprintf(os.Stderr, "runner: %d store-tier errors (treated as misses)\n", s.TierErrors)
	}
	ictl, ifull := interp.PlaneRuns()
	rctl, rfull := tracefile.ReplayPlaneRuns()
	fmt.Fprintf(os.Stderr, "obs: %d instructions interpreted (last run %.2f ns/instr), %d traversals, %d replays; plane runs ctl/full: interp %d/%d, replay %d/%d\n",
		interp.Instructions(), interp.LastNsPerInstr(), harness.Traversals(), harness.Replays(), ictl, ifull, rctl, rfull)
}

// profileFlags adds -cpuprofile/-memprofile to fs and returns a start
// hook (call after flag parsing) whose returned stop hook writes the
// profiles; sweep hotspots become inspectable without editing code.
func profileFlags(fs *flag.FlagSet) func() (stop func() error, err error) {
	cpu := fs.String("cpuprofile", "", "write a CPU profile of the command to this file")
	mem := fs.String("memprofile", "", "write an end-of-command heap profile to this file")
	return func() (func() error, error) {
		var cpuFile *os.File
		if *cpu != "" {
			f, err := os.Create(*cpu)
			if err != nil {
				return nil, err
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return nil, err
			}
			cpuFile = f
		}
		return func() error {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					return err
				}
			}
			if *mem != "" {
				f, err := os.Create(*mem)
				if err != nil {
					return err
				}
				defer f.Close()
				runtime.GC() // settle the heap so the profile shows retained memory
				if err := pprof.WriteHeapProfile(f); err != nil {
					return err
				}
			}
			return nil
		}, nil
	}
}

func cmdExperiment(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("missing experiment name (table1|table2|fig4|fig5|fig6|fig7|fig8|ablations|all)")
	}
	what := args[0]
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	n := fs.Uint64("n", expt.DefaultBudget, "per-benchmark instruction budget")
	seed := fs.Uint64("seed", 1, "workload input seed")
	benches := fs.String("bench", "", "comma-separated benchmark subset")
	batch := fs.Int("batch", 0, "event-batch size (0 = default 1024; output is identical at any size)")
	progress, mkRunner := parallelFlags(fs)
	profile := profileFlags(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	stopProfile, err := profile()
	if err != nil {
		return err
	}
	o, err := mkRunner()
	if err != nil {
		return err
	}
	defer o.close()
	cfg := expt.Config{Budget: *n, Seed: *seed, BatchSize: *batch, Runner: o.runner, Traces: o.traces}
	if *benches != "" {
		cfg.Benchmarks = strings.Split(*benches, ",")
	}
	defer func() { printRunnerStats(cfg.Runner, *progress, *seed) }()
	defer func() {
		if err := stopProfile(); err != nil {
			fmt.Fprintln(os.Stderr, "dynloop: profile:", err)
		}
	}()
	run := func(name string) error {
		switch name {
		case "table1":
			rows, err := expt.Table1(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderTable1(rows))
		case "table2":
			rows, err := expt.Table2(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderTable2(rows))
		case "fig4":
			pts, err := expt.Fig4(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderFig4(pts))
		case "fig5":
			rows, err := expt.Fig5(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderFig5(rows))
		case "fig6":
			rows, err := expt.Fig6(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderFig6(rows))
		case "fig7":
			cells, err := expt.Fig7(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderFig7(cells))
		case "baseline":
			rows, err := expt.BaselineBranchPred(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderBaseline(rows))
			fmt.Println()
			trows, err := expt.BaselineTaskPred(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderTaskPred(trows))
		case "fig8":
			rows, avg, err := expt.Fig8(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderFig8(rows, avg))
		case "ablations":
			cls, err := expt.AblationCLSSize(ctx, cfg, nil)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderCLSSize(cls))
			let, err := expt.AblationLETCapacity(ctx, cfg, nil)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderLETCapacity(let))
			rep, err := expt.AblationReplacement(ctx, cfg, nil)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderReplacement(rep))
			os, err := expt.AblationOneShots(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderOneShots(os))
			nr, err := expt.AblationNestRule(ctx, cfg, nil)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderNestRule(nr))
			ex, err := expt.AblationExclusion(ctx, cfg, 0)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderExclusion(ex))
			or, err := expt.AblationOracle(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Print(expt.RenderOracle(or))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
		return nil
	}
	if what == "all" {
		// One shared runner (cfg.Runner) deduplicates the overlapping
		// cells across sections — Figure 7's STR column is Figure 6, its
		// STR(3)/4TU cells are Table 2's.
		for _, name := range []string{"table1", "fig4", "fig5", "fig6", "fig7", "table2", "fig8", "baseline", "ablations"} {
			if err := run(name); err != nil {
				return err
			}
		}
		return nil
	}
	return run(what)
}

func cmdSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	n := fs.Uint64("n", expt.DefaultBudget, "per-benchmark instruction budget")
	seed := fs.Uint64("seed", 1, "workload input seed")
	benches := fs.String("bench", "", "comma-separated benchmark subset (default: all 18)")
	policies := fs.String("policy", "", "comma-separated policies (default: idle,str,str1,str2,str3)")
	tus := fs.String("tus", "", "comma-separated machine sizes (default: 2,4,8,16)")
	batch := fs.Int("batch", 0, "event-batch size (0 = default 1024; output is identical at any size)")
	remote := fs.String("remote", "", "run the sweep on a dynloop serve daemon at this base URL instead of locally")
	progress, mkRunner := parallelFlags(fs)
	applyDelivery := deliveryFlags(fs)
	profile := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var tuList []int
	if *tus != "" {
		for _, s := range strings.Split(*tus, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || k < 0 {
				return fmt.Errorf("bad -tus entry %q", s)
			}
			tuList = append(tuList, k)
		}
	}
	var benchList, policyList []string
	if *benches != "" {
		benchList = strings.Split(*benches, ",")
	}
	if *policies != "" {
		policyList = strings.Split(*policies, ",")
	}

	if *remote != "" {
		return remoteSweep(ctx, *remote, wire.SweepRequest{
			Benchmarks: benchList,
			Policies:   policyList,
			TUs:        tuList,
			Budget:     *n,
			Seed:       *seed,
			BatchSize:  *batch,
		}, *progress)
	}

	stopProfile, err := profile()
	if err != nil {
		return err
	}
	o, err := mkRunner()
	if err != nil {
		return err
	}
	defer o.close()
	cfg := expt.Config{Budget: *n, Seed: *seed, BatchSize: *batch, Benchmarks: benchList, Runner: o.runner, Traces: o.traces}
	applyDelivery(&cfg)
	defer func() { printRunnerStats(cfg.Runner, *progress, *seed) }()
	defer func() {
		if err := stopProfile(); err != nil {
			fmt.Fprintln(os.Stderr, "dynloop: profile:", err)
		}
	}()
	var sw expt.SweepSpec
	if len(policyList) > 0 {
		pols, err := expt.ParsePolicies(policyList)
		if err != nil {
			return err
		}
		sw.Policies = pols
	}
	sw.TUs = tuList
	rows, err := expt.Sweep(ctx, cfg, sw)
	if err != nil {
		return err
	}
	fmt.Print(expt.RenderSweep(rows))
	return nil
}

// remoteSweep runs the grid on a daemon and renders the rows with the
// same renderer as the local path — the output is byte-identical to a
// local run of the same grid. With -progress, the daemon's event
// stream is mirrored to stderr while the sweep computes (events from
// other concurrent clients appear too: the daemon's grid is shared).
func remoteSweep(ctx context.Context, base string, req wire.SweepRequest, progress bool) error {
	c := client.New(base, nil)
	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("daemon at %s: %w", base, err)
	}
	var stopEvents context.CancelFunc
	if progress {
		var evCtx context.Context
		evCtx, stopEvents = context.WithCancel(ctx)
		print := progressPrinter()
		go func() {
			err := c.Events(evCtx, func(ev wire.Event) {
				kind, ok := map[string]runner.EventKind{
					"done": runner.JobDone, "cached": runner.JobCached, "failed": runner.JobFailed,
				}[ev.Kind]
				if !ok {
					return
				}
				rev := runner.Event{Kind: kind, Key: ev.Key, Label: ev.Label,
					Elapsed: time.Duration(ev.ElapsedMS) * time.Millisecond, Completed: ev.Completed}
				if ev.Err != "" {
					rev.Err = fmt.Errorf("%s", ev.Err)
				}
				print(rev)
			})
			if err != nil && evCtx.Err() == nil {
				fmt.Fprintln(os.Stderr, "dynloop: event stream:", err)
			}
		}()
	}
	rows, err := c.Sweep(ctx, req)
	if stopEvents != nil {
		stopEvents()
	}
	if err != nil {
		return err
	}
	fmt.Print(expt.RenderSweep(rows))
	if progress {
		st, err := c.Stats(ctx)
		if err == nil {
			fmt.Fprintf(os.Stderr, "daemon: %d jobs, %d executed, %d fused group runs on %d workers, %d cache hits, %d coalesced, %d disk hits, %d disk puts, %d trace replays, %d trace records\n",
				st.Runner.Submitted, st.Runner.Executed, st.Runner.GroupRuns, st.Workers,
				st.Runner.CacheHits, st.Runner.Coalesced, st.Runner.DiskHits, st.Runner.DiskPuts,
				st.Runner.ReplayRuns, st.Runner.RecordRuns)
		}
	}
	return nil
}

// cmdGrid executes a declarative grid spec — a user-authored JSON file
// or a registered name — locally or on a serve daemon. Both paths
// render through the same spec-driven renderer, so the bytes match.
func cmdGrid(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("grid", flag.ExitOnError)
	specFile := fs.String("spec", "", "JSON grid spec file to execute")
	name := fs.String("name", "", "registered grid to execute (see -list)")
	list := fs.Bool("list", false, "list the registered grids and exit")
	n := fs.Uint64("n", expt.DefaultBudget, "default per-benchmark instruction budget (a spec may sweep explicit budgets)")
	seed := fs.Uint64("seed", 1, "default workload input seed (a spec may sweep explicit seeds)")
	benches := fs.String("bench", "", "comma-separated benchmark subset (when the spec names none)")
	batch := fs.Int("batch", 0, "event-batch size (0 = default 1024; output is identical at any size)")
	format := fs.String("format", "", "override the render layout: table, csv or json")
	remote := fs.String("remote", "", "execute the grid on a dynloop serve daemon at this base URL")
	progress, mkRunner := parallelFlags(fs)
	applyDelivery := deliveryFlags(fs)
	profile := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var benchList []string
	if *benches != "" {
		benchList = strings.Split(*benches, ",")
	}
	cfg := expt.Config{Budget: *n, Seed: *seed, BatchSize: *batch, Benchmarks: benchList}

	if *list {
		return listGrids(ctx, *remote, cfg)
	}

	var gs dynloop.GridSpec
	switch {
	case *specFile != "" && *name != "":
		return fmt.Errorf("pass either -spec FILE or -name NAME, not both")
	case *specFile != "":
		data, err := os.ReadFile(*specFile)
		if err != nil {
			return err
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&gs); err != nil {
			return fmt.Errorf("parsing %s: %w", *specFile, err)
		}
		if err := gs.Validate(); err != nil {
			return err
		}
	case *name != "":
		e, ok := dynloop.GridByName(*name)
		if !ok {
			return fmt.Errorf("no registered grid %q (try: dynloop grid -list)", *name)
		}
		gs = e.Spec
	default:
		return fmt.Errorf("missing -spec FILE or -name NAME (or -list)")
	}
	if *format != "" {
		gs.Render.Format = *format
	}

	if *remote != "" {
		return remoteGrid(ctx, *remote, cfg, gs, *name, *progress)
	}

	stopProfile, err := profile()
	if err != nil {
		return err
	}
	o, err := mkRunner()
	if err != nil {
		return err
	}
	defer o.close()
	cfg.Runner = o.runner
	cfg.Traces = o.traces
	applyDelivery(&cfg)
	defer func() { printRunnerStats(cfg.Runner, *progress, *seed) }()
	defer func() {
		if err := stopProfile(); err != nil {
			fmt.Fprintln(os.Stderr, "dynloop: profile:", err)
		}
	}()
	res, err := dynloop.RunGrid(ctx, cfg, gs)
	if err != nil {
		return err
	}
	out, err := dynloop.RenderGrid(res)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

// listGrids prints the grid registry — the local one, or the daemon's
// when -remote is given.
func listGrids(ctx context.Context, remote string, cfg expt.Config) error {
	t := report.NewTable("Registered grids (dynloop grid -name NAME; axes default per spec)",
		"name", "kind", "cells", "title")
	if remote != "" {
		c := client.New(remote, nil)
		infos, err := c.Grids(ctx)
		if err != nil {
			return err
		}
		for _, gi := range infos {
			t.AddRow(gi.Name, gi.Kind, gi.Cells, gi.Title)
		}
	} else {
		for _, name := range dynloop.GridNames() {
			e, ok := dynloop.GridByName(name)
			if !ok {
				continue
			}
			cells, err := e.Spec.Size(cfg)
			if err != nil {
				cells = 0
			}
			t.AddRow(name, e.Spec.Kind, cells, e.Spec.Title)
		}
	}
	fmt.Print(t.String())
	return nil
}

// remoteGrid runs the spec on a daemon and renders the returned cell
// values through the same renderer as the local path — byte-identical
// output. Named grids go up by name (the daemon resolves its canonical
// spec — identical to ours); ad-hoc specs go up inline.
func remoteGrid(ctx context.Context, base string, cfg expt.Config, gs dynloop.GridSpec, name string, progress bool) error {
	c := client.New(base, nil)
	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("daemon at %s: %w", base, err)
	}
	req := wire.GridRequest{
		Benchmarks: cfg.Benchmarks,
		Budget:     cfg.Budget,
		Seed:       cfg.Seed,
		BatchSize:  cfg.BatchSize,
	}
	if name != "" && gs.Render.Format == "" {
		req.Name = name
	} else {
		req.Spec = &gs
	}
	values, err := c.Grid(ctx, req)
	if err != nil {
		return err
	}
	res, err := dynloop.GridResultFrom(cfg, gs, values)
	if err != nil {
		return err
	}
	out, err := dynloop.RenderGrid(res)
	if err != nil {
		return err
	}
	fmt.Print(out)
	if progress {
		st, err := c.Stats(ctx)
		if err == nil {
			fmt.Fprintf(os.Stderr, "daemon: %d jobs, %d executed, %d fused group runs on %d workers, %d cache hits, %d coalesced, %d disk hits, %d disk puts, %d trace replays, %d trace records\n",
				st.Runner.Submitted, st.Runner.Executed, st.Runner.GroupRuns, st.Workers,
				st.Runner.CacheHits, st.Runner.Coalesced, st.Runner.DiskHits, st.Runner.DiskPuts,
				st.Runner.ReplayRuns, st.Runner.RecordRuns)
		}
	}
	return nil
}

// cmdServe runs the grid-serving daemon until interrupted; Ctrl-C (or
// SIGINT from a supervisor) shuts it down gracefully.
// splitList splits a comma-separated flag value, trimming whitespace
// and dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "listen address")
	storeDir := fs.String("store", "", "persistent result store directory (empty = in-memory results only)")
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
	inflight := fs.Int("max-inflight", 0, "concurrently computed grid requests (0 = 2x workers)")
	maxCells := fs.Int("max-cells", 0, "largest accepted grid in cells (0 = 100000)")
	grace := fs.Duration("grace", 10*time.Second, "graceful-shutdown timeout for in-flight requests")
	warm := fs.String("warm", "", "comma-separated registered grids (or \"all\") for the background warmer to precompute while idle")
	warmBench := fs.String("warm-bench", "", "narrow warming to these benchmarks (default: all 18)")
	queueWait := fs.Duration("queue-wait", 0, "longest a request may queue for an inflight slot before a 422 shed (0 = 30s, negative = forever)")
	compactRatio := fs.Float64("compact-ratio", 0, "auto-compact the store when superseded records exceed this fraction of its bytes (0 = disabled)")
	progress := fs.Bool("progress", false, "stream per-job progress to stderr")
	tracesDir := fs.String("traces", "", "trace-archive directory for the replay tier (cold cells replay recorded streams instead of interpreting)")
	pprofAddr := fs.String("pprof", "", "additionally serve net/http/pprof on this address (empty = disabled)")
	logMode := fs.String("log", "off", "structured request logs to stderr: text, json or off")
	profile := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfile, err := profile()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfile(); err != nil {
			fmt.Fprintln(os.Stderr, "dynloop: profile:", err)
		}
	}()
	cfg := server.Config{Workers: *parallel, MaxInflight: *inflight, MaxCells: *maxCells, QueueWait: *queueWait}
	if *warm != "" {
		cfg.Warm = splitList(*warm)
	}
	if *warmBench != "" {
		cfg.WarmBenchmarks = splitList(*warmBench)
	}
	switch *logMode {
	case "text":
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		cfg.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off", "":
	default:
		return fmt.Errorf("bad -log %q (text|json|off)", *logMode)
	}
	if *pprofAddr != "" {
		// The pprof handlers live on their own listener, never on the
		// daemon's: profiling stays opt-in and bindable to loopback while
		// the service address is exposed.
		go func() {
			fmt.Fprintf(os.Stderr, "dynloop: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dynloop: pprof:", err)
			}
		}()
	}
	if *tracesDir != "" {
		arch, err := tracefile.OpenArchive(*tracesDir)
		if err != nil {
			return err
		}
		cfg.Traces = harness.NewTraces(arch)
		fmt.Fprintf(os.Stderr, "dynloop: traces %s: %d recordings\n", *tracesDir, arch.Stats().Recordings)
	}
	if *progress {
		cfg.OnEvent = progressPrinter()
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{CompactGarbageRatio: *compactRatio})
		if err != nil {
			return err
		}
		defer func() {
			if err := st.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "dynloop: store:", err)
			}
		}()
		cfg.Store = st
		ss := st.Stats()
		fmt.Fprintf(os.Stderr, "dynloop: store %s: %d results in %d segments (%d bytes)\n",
			*storeDir, ss.Records, ss.Segments, ss.Bytes)
	}
	srv := server.New(cfg)
	ready := make(chan string, 1)
	go func() {
		bound, ok := <-ready
		if ok && bound != "" {
			fmt.Fprintf(os.Stderr, "dynloop: serving on http://%s (%d workers)\n", bound, srv.Runner().Workers())
		}
	}()
	err = srv.ListenAndServe(ctx, *addr, ready, *grace)
	fmt.Fprintln(os.Stderr, "dynloop: daemon stopped")
	printRunnerStats(srv.Runner(), true, 0)
	if ws, ok := srv.WarmerStats(); ok {
		fmt.Fprintf(os.Stderr, "warmer: %d/%d units, %d cells, %d pauses, %d errors\n",
			ws.UnitsDone, ws.Units, ws.Cells, ws.Pauses, ws.Errors)
	}
	if cfg.Store != nil {
		ss := cfg.Store.Stats()
		fmt.Fprintf(os.Stderr, "store: %d records in %d segments, %d bytes (%d dead), %d puts, %d/%d get hits, %d compactions (%d bytes reclaimed)\n",
			ss.Records, ss.Segments, ss.Bytes, ss.DeadBytes, ss.Puts, ss.Hits, ss.Gets, ss.Compactions, ss.ReclaimedBytes)
	}
	return err
}

// cmdTrace dispatches the archive subcommands (record, ls, verify) and
// falls through to the legacy single-file recorder for flag-style
// invocations (dynloop trace -bench NAME -o FILE).
func cmdTrace(ctx context.Context, args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "record":
			return cmdTraceRecord(ctx, args[1:])
		case "ls":
			return cmdTraceLs(args[1:])
		case "verify":
			return cmdTraceVerify(args[1:])
		}
	}
	return cmdTraceFile(args)
}

// cmdTraceRecord warms a trace archive: one recording per requested
// benchmark, through the same replay tier the runner uses, so a
// benchmark already covered replays (and reports so) instead of
// re-interpreting.
func cmdTraceRecord(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("trace record", flag.ExitOnError)
	dir := fs.String("traces", "", "trace-archive directory")
	benches := fs.String("bench", "", "comma-separated benchmarks to record (default: all 18)")
	n := fs.Uint64("n", expt.DefaultBudget, "instruction budget to record (0 = run to halt; a recording serves every budget it covers)")
	seed := fs.Uint64("seed", 1, "workload input seed")
	batch := fs.Int("batch", 0, "event-batch size while recording (results identical at any size)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("missing -traces DIR")
	}
	arch, err := tracefile.OpenArchive(*dir)
	if err != nil {
		return err
	}
	tr := harness.NewTraces(arch)
	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	} else {
		for _, bm := range dynloop.Benchmarks() {
			names = append(names, bm.Name)
		}
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		bm, err := dynloop.BenchmarkByName(name)
		if err != nil {
			return err
		}
		build := func() (*dynloop.Unit, error) { return bm.Build(*seed) }
		res, replayed, err := tr.MultiRun(ctx, bm.Name, *seed,
			build, harness.MultiConfig{Budget: *n, BatchSize: *batch})
		if err != nil {
			return err
		}
		how := "recorded"
		if replayed {
			how = "already archived, replayed"
		}
		fmt.Printf("%s: %s %d instructions (halted=%v)\n", bm.Name, how, res.Executed, res.Halted)
	}
	return nil
}

// cmdTraceLs lists an archive's recordings.
func cmdTraceLs(args []string) error {
	fs := flag.NewFlagSet("trace ls", flag.ExitOnError)
	dir := fs.String("traces", "", "trace-archive directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("missing -traces DIR")
	}
	arch, err := tracefile.OpenArchive(*dir)
	if err != nil {
		return err
	}
	recs := arch.Recordings()
	t := report.NewTable(fmt.Sprintf("trace archive %s (%d recordings)", *dir, len(recs)),
		"bench", "seed", "events", "halted", "blocks", "bytes", "schema", "planes")
	for _, r := range recs {
		t.AddRow(r.Bench(), r.Seed(), r.Events(), r.Halted(), r.Blocks(), r.Size(),
			r.SchemaVersion(), planesString(r.Planes()))
	}
	fmt.Print(t.String())
	if st := arch.Stats(); st.Invalidated > 0 || st.SchemaSkips > 0 || st.TruncatedTail > 0 {
		fmt.Printf("recovery: %d invalid recordings skipped, %d schema skews skipped, %d torn-tail bytes truncated\n",
			st.Invalidated, st.SchemaSkips, st.TruncatedTail)
	}
	return nil
}

// planesString renders a plane capability mask for listings.
func planesString(p trace.Planes) string {
	switch {
	case p&trace.PlaneCtl != 0 && p&trace.PlaneData != 0:
		return "ctl+data"
	case p&trace.PlaneCtl != 0:
		return "ctl"
	case p&trace.PlaneData != 0:
		return "data"
	default:
		return "none"
	}
}

// cmdTraceVerify fully decodes every recording in an archive (Open
// already CRC- and decode-checks each block) and fails on any damage,
// so CI and operators can assert an archive is servable.
func cmdTraceVerify(args []string) error {
	fs := flag.NewFlagSet("trace verify", flag.ExitOnError)
	dir := fs.String("traces", "", "trace-archive directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("missing -traces DIR")
	}
	arch, err := tracefile.OpenArchive(*dir)
	if err != nil {
		return err
	}
	recs := arch.Recordings()
	for _, r := range recs {
		n, _, err := r.Replay(0, nil, nil)
		if err != nil {
			return fmt.Errorf("%s seed %d: %w", r.Bench(), r.Seed(), err)
		}
		if n != r.Events() {
			return fmt.Errorf("%s seed %d: replayed %d of %d events", r.Bench(), r.Seed(), n, r.Events())
		}
	}
	if st := arch.Stats(); st.Invalidated > 0 {
		return fmt.Errorf("%d recordings failed verification (block CRC or decode damage)", st.Invalidated)
	}
	fmt.Printf("verified %d recordings: every block CRC-clean and decodable\n", len(recs))
	return nil
}

func cmdTraceFile(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	bench, n, seed, batch := benchFlags(fs)
	out := fs.String("o", "", "output trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("missing -o FILE")
	}
	u, err := buildBench(*bench, *seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := tracefile.NewWriter(f, u.Prog)
	if err != nil {
		return err
	}
	cpu := u.NewCPU()
	cpu.SetBatchSize(*batch)
	executed, err := cpu.Run(*n, w)
	if err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d instructions of %s to %s\n", executed, *bench, *out)
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	tus := fs.Int("tus", 4, "thread units")
	polName := fs.String("policy", "str3", "speculation policy")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -i FILE")
	}
	pol, err := parsePolicy(*polName)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := tracefile.NewReader(f)
	if err != nil {
		return err
	}
	det := dynloop.NewDetector(dynloop.DetectorConfig{Capacity: 16})
	stats := dynloop.NewLoopStats()
	e := dynloop.NewEngine(dynloop.EngineConfig{TUs: *tus, Policy: pol})
	det.AddObserver(stats)
	det.AddObserver(e)
	nEvents, err := r.Replay(det)
	if err != nil {
		return err
	}
	det.Flush()
	s, m := stats.Summary(), e.Metrics()
	t := report.NewTable(fmt.Sprintf("replay of %q (%d events)", r.Program().Name, nEvents),
		"metric", "value")
	t.AddRow("static loops", s.StaticLoops)
	t.AddRow("iter/exec", s.ItersPerExec)
	t.AddRow("TPC", m.TPC())
	t.AddRow("hit ratio %", m.HitRatio())
	fmt.Print(t.String())
	return nil
}
