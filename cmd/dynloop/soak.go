package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynloop/internal/client"
	"dynloop/internal/obs"
	"dynloop/internal/wire"
)

// soakReport is the JSON result of a soak run: sustained client-side
// throughput plus server-side latency quantiles derived from the
// /metrics histogram deltas, and whether the scrape reconciled with the
// daemon's own /v1/stats counters.
type soakReport struct {
	Remote     string   `json:"remote"`
	Clients    int      `json:"clients"`
	DurationS  float64  `json:"duration_s"`
	Requests   uint64   `json:"requests"`
	Errors     uint64   `json:"errors"`
	RPS        float64  `json:"rps"`
	CellsPer   int      `json:"cells_per_request"`
	CellsPerS  float64  `json:"cells_per_s"`
	P50Ms      float64  `json:"p50_ms"`
	P99Ms      float64  `json:"p99_ms"`
	Reconciled bool     `json:"reconciled"`
	Mismatches []string `json:"mismatches,omitempty"`
}

// cmdSoak drives a serve daemon with N concurrent clients issuing the
// same sweep for a fixed wall-clock duration — the shared-grid shape
// where every request past the first hits the memory tier — then
// derives the report from the daemon's exported metrics. Reconciliation
// assumes the soak is the daemon's only active client: it compares the
// movement of the scraped runner mirrors against the movement of the
// runner's own /v1/stats counters, which must match exactly.
func cmdSoak(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	remote := fs.String("remote", "", "base URL of the dynloop serve daemon to soak (required)")
	clients := fs.Int("clients", 4, "concurrent client goroutines")
	duration := fs.Duration("duration", 10*time.Second, "sustained load duration")
	benches := fs.String("bench", "swim,compress", "comma-separated benchmarks per sweep")
	policies := fs.String("policy", "str,str3", "comma-separated policies per sweep")
	tus := fs.String("tus", "2,4", "comma-separated machine sizes per sweep")
	n := fs.Uint64("n", 200_000, "per-benchmark instruction budget")
	seed := fs.Uint64("seed", 1, "workload input seed")
	out := fs.String("o", "", "write the JSON report to this file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" {
		return fmt.Errorf("missing -remote URL (start one with: dynloop serve)")
	}
	var tuList []int
	for _, s := range strings.Split(*tus, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || k < 0 {
			return fmt.Errorf("bad -tus entry %q", s)
		}
		tuList = append(tuList, k)
	}
	req := wire.SweepRequest{
		Benchmarks: strings.Split(*benches, ","),
		Policies:   strings.Split(*policies, ","),
		TUs:        tuList,
		Budget:     *n,
		Seed:       *seed,
	}
	cells := len(req.Benchmarks) * len(req.Policies) * len(tuList)

	c := client.New(*remote, nil)
	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("daemon at %s: %w", *remote, err)
	}

	statsBefore, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	mBefore, err := c.Metrics(ctx)
	if err != nil {
		return err
	}

	deadline := time.Now().Add(*duration)
	loadCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	var requests, errors atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) && loadCtx.Err() == nil {
				if _, err := c.Sweep(loadCtx, req); err != nil {
					if loadCtx.Err() != nil {
						return // deadline cut the request short, not a failure
					}
					errors.Add(1)
					continue
				}
				requests.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	statsAfter, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	mAfter, err := c.Metrics(ctx)
	if err != nil {
		return err
	}

	rep := soakReport{
		Remote:    *remote,
		Clients:   *clients,
		DurationS: elapsed.Seconds(),
		Requests:  requests.Load(),
		Errors:    errors.Load(),
		RPS:       float64(requests.Load()) / elapsed.Seconds(),
		CellsPer:  cells,
		CellsPerS: float64(requests.Load()) * float64(cells) / elapsed.Seconds(),
	}
	rep.P50Ms, rep.P99Ms, err = sweepQuantileDeltas(mBefore, mAfter)
	if err != nil {
		return err
	}
	rep.Mismatches = reconcile(mBefore, mAfter, statsBefore, statsAfter, requests.Load())
	rep.Reconciled = len(rep.Mismatches) == 0

	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, body, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dynloop: soak report written to %s\n", *out)
	} else {
		os.Stdout.Write(body)
	}
	if !rep.Reconciled {
		return fmt.Errorf("metrics failed to reconcile with /v1/stats: %s", strings.Join(rep.Mismatches, "; "))
	}
	return nil
}

// sweepQuantileDeltas derives p50/p99 (milliseconds) for the sweep
// endpoint from the latency-histogram movement between two scrapes.
func sweepQuantileDeltas(before, after map[string]float64) (p50, p99 float64, err error) {
	const fam = "dynloop_http_request_seconds"
	const sel = `endpoint="/v1/sweep"`
	_, c0, err := obs.BucketsOf(before, fam, sel)
	if err != nil {
		return 0, 0, err
	}
	bounds, c1, err := obs.BucketsOf(after, fam, sel)
	if err != nil {
		return 0, 0, err
	}
	if len(c0) != len(c1) {
		return 0, 0, fmt.Errorf("soak: histogram bucket count changed between scrapes (%d -> %d)", len(c0), len(c1))
	}
	delta := make([]uint64, len(c1))
	for i := range c1 {
		delta[i] = c1[i] - c0[i]
	}
	p50 = 1000 * obs.Quantile(0.50, bounds, delta)
	p99 = 1000 * obs.Quantile(0.99, bounds, delta)
	if math.IsNaN(p50) || math.IsNaN(p99) {
		return 0, 0, fmt.Errorf("soak: no sweep requests landed in the latency histogram")
	}
	return p50, p99, nil
}

// reconcile cross-checks the scraped counter movement against the
// daemon's own /v1/stats movement over the same window. Exact equality
// is the contract: both views are fed by the same atomic increments.
func reconcile(mBefore, mAfter map[string]float64, sBefore, sAfter wire.Stats, clientReqs uint64) []string {
	var bad []string
	delta := func(series string) uint64 {
		return uint64(mAfter[series] - mBefore[series])
	}
	checks := []struct {
		name   string
		scrape uint64
		stats  uint64
	}{
		{"runner submitted", delta("dynloop_runner_jobs_submitted_total"), sAfter.Runner.Submitted - sBefore.Runner.Submitted},
		{"runner executed", delta("dynloop_runner_jobs_executed_total"), sAfter.Runner.Executed - sBefore.Runner.Executed},
		{"runner cache hits", delta("dynloop_runner_cache_hits_total"), sAfter.Runner.CacheHits - sBefore.Runner.CacheHits},
		{"runner group runs", delta("dynloop_runner_group_runs_total"), sAfter.Runner.GroupRuns - sBefore.Runner.GroupRuns},
	}
	for _, ck := range checks {
		if ck.scrape != ck.stats {
			bad = append(bad, fmt.Sprintf("%s: scrape moved %d, stats moved %d", ck.name, ck.scrape, ck.stats))
		}
	}
	// Every completed client request must appear in the endpoint counter;
	// the counter may run ahead by requests the deadline aborted mid-
	// flight, never behind.
	if got := delta(`dynloop_http_requests_total{endpoint="/v1/sweep"}`); got < clientReqs {
		bad = append(bad, fmt.Sprintf("sweep endpoint counted %d requests, clients completed %d", got, clientReqs))
	}
	return bad
}
