// The `dynloop store` subcommand family: offline administration of an
// on-disk result store, mirroring `dynloop trace`'s shape. `ls` and
// `stats` snapshot a store, `verify` audits every segment and sidecar
// byte-for-byte without opening the store, `compact` rewrites the live
// set densely, and `gen` writes a synthetic garbage-heavy store for
// smoke tests and benchmarks.
package main

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"flag"

	"dynloop/internal/report"
	"dynloop/internal/store"
)

// cmdStore dispatches the store subcommands.
func cmdStore(_ context.Context, args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "ls":
			return cmdStoreLs(args[1:])
		case "verify":
			return cmdStoreVerify(args[1:])
		case "compact":
			return cmdStoreCompact(args[1:])
		case "stats":
			return cmdStoreStats(args[1:])
		case "gen":
			return cmdStoreGen(args[1:])
		}
	}
	return fmt.Errorf("usage: dynloop store ls|verify|compact|stats|gen -store DIR ...")
}

// storeDirFlag adds the common -store flag.
func storeDirFlag(fs *flag.FlagSet) *string {
	return fs.String("store", "", "result-store directory")
}

// openStoreArg parses a subcommand's flags and opens its store.
func openStoreArg(name string, args []string, opts store.Options) (*store.Store, error) {
	fs := flag.NewFlagSet("store "+name, flag.ExitOnError)
	dir := storeDirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *dir == "" {
		return nil, fmt.Errorf("missing -store DIR")
	}
	return store.Open(*dir, opts)
}

// cmdStoreLs opens a store (through its sidecars, exactly as serve
// would) and lists the segments.
func cmdStoreLs(args []string) error {
	st, err := openStoreArg("ls", args, store.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	ss := st.Stats()
	t := report.NewTable(fmt.Sprintf("store %s (%d records, %d segments)", st.Dir(), ss.Records, ss.Segments),
		"segment", "records", "bytes", "dead", "opened via")
	for _, seg := range st.Segments() {
		t.AddRow(filepath.Base(seg.Path), seg.Records, seg.Bytes, seg.Dead, seg.How)
	}
	fmt.Print(t.String())
	fmt.Printf("open: %d sidecar hits, %d scan rebuilds, %d torn-tail bytes truncated\n",
		ss.SidecarHits, ss.SidecarRebuilds, ss.TruncatedTail)
	return nil
}

// cmdStoreVerify audits a store directory byte-for-byte without
// opening it: every record's CRC, last-write-wins accounting, and
// every sidecar against the data it indexes.
func cmdStoreVerify(args []string) error {
	fs := flag.NewFlagSet("store verify", flag.ExitOnError)
	dir := storeDirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("missing -store DIR")
	}
	rep, err := store.Verify(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("store %s: OK\n", *dir)
	fmt.Printf("  segments:       %d (%d bytes)\n", rep.Segments, rep.Bytes)
	fmt.Printf("  records:        %d on disk, %d live, %d dead bytes\n",
		rep.TotalRecords, rep.LiveRecords, rep.DeadBytes)
	fmt.Printf("  sidecars:       %d ok, %d stale, %d missing\n",
		rep.SidecarsOK, rep.SidecarsStale, rep.SidecarsMissing)
	if rep.TornTailBytes > 0 {
		fmt.Printf("  torn tail:      %d bytes (newest segment; Open repairs by truncation)\n", rep.TornTailBytes)
	}
	return nil
}

// cmdStoreCompact rewrites the store's live records densely and
// reports the space reclaimed.
func cmdStoreCompact(args []string) error {
	st, err := openStoreArg("compact", args, store.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	start := time.Now()
	cs, err := st.Compact()
	if err != nil {
		return err
	}
	fmt.Printf("compacted %s in %v: %d live records, %d -> %d segments, %d -> %d bytes (%d reclaimed)\n",
		st.Dir(), time.Since(start).Round(time.Millisecond),
		cs.LiveRecords, cs.SegmentsBefore, cs.SegmentsAfter,
		cs.BytesBefore, cs.BytesAfter, cs.Reclaimed)
	return nil
}

// cmdStoreStats prints the store's counters in the same shape
// /v1/stats serves them.
func cmdStoreStats(args []string) error {
	st, err := openStoreArg("stats", args, store.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	ss := st.Stats()
	fmt.Printf("store %s:\n", st.Dir())
	fmt.Printf("  records:          %d\n", ss.Records)
	fmt.Printf("  segments:         %d\n", ss.Segments)
	fmt.Printf("  bytes:            %d\n", ss.Bytes)
	fmt.Printf("  dead_bytes:       %d\n", ss.DeadBytes)
	fmt.Printf("  sidecar_hits:     %d\n", ss.SidecarHits)
	fmt.Printf("  sidecar_rebuilds: %d\n", ss.SidecarRebuilds)
	fmt.Printf("  truncated_tail:   %d\n", ss.TruncatedTail)
	return nil
}

// cmdStoreGen writes a synthetic store: -keys distinct keys overwritten
// -rounds times, so (rounds-1)/rounds of the bytes are garbage. The
// values are deterministic in (seed, key, round); smoke tests use it to
// manufacture compaction-worthy stores without burning engine time.
func cmdStoreGen(args []string) error {
	fs := flag.NewFlagSet("store gen", flag.ExitOnError)
	dir := storeDirFlag(fs)
	keys := fs.Int("keys", 100_000, "distinct keys to write")
	rounds := fs.Int("rounds", 2, "full overwrite passes (garbage ratio = (rounds-1)/rounds)")
	valBytes := fs.Int("valbytes", 256, "value size in bytes")
	seed := fs.Uint64("seed", 1, "value-content seed")
	segBytes := fs.Int64("segbytes", 0, "max segment size (0 = store default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("missing -store DIR")
	}
	if *keys <= 0 || *rounds <= 0 || *valBytes <= 0 {
		return fmt.Errorf("-keys, -rounds and -valbytes must be positive")
	}
	st, err := store.Open(*dir, store.Options{MaxSegmentBytes: *segBytes})
	if err != nil {
		return err
	}
	defer st.Close()
	start := time.Now()
	val := make([]byte, *valBytes)
	for r := 0; r < *rounds; r++ {
		for k := 0; k < *keys; k++ {
			// xorshift-ish deterministic filler; cheap, incompressible
			// enough, and stable across runs for a given seed.
			x := *seed ^ uint64(r)<<32 ^ uint64(k)
			for i := range val {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				val[i] = byte(x)
			}
			if err := st.Put(fmt.Sprintf("gen/%08d", k), val); err != nil {
				return err
			}
		}
	}
	if err := st.Sync(); err != nil {
		return err
	}
	ss := st.Stats()
	fmt.Printf("generated %s in %v: %d records in %d segments, %d bytes (%d dead)\n",
		st.Dir(), time.Since(start).Round(time.Millisecond),
		ss.Records, ss.Segments, ss.Bytes, ss.DeadBytes)
	return nil
}
