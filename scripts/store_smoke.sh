#!/usr/bin/env bash
# store_smoke.sh — end-to-end smoke test for the fleet-scale store:
# index sidecars, compaction and the background grid warmer.
#
# Builds the CLI, manufactures a garbage-heavy store with `store gen`,
# audits it with `store verify`, computes a paper-experiment subset into
# it, then re-renders the experiment from a sidecar-opened store, a
# scan-opened store (sidecars deleted) and a compacted store — all four
# renders must be byte-identical and every warm render must make ZERO
# interpreter traversals. `store compact` must reclaim at least 90% of
# the dead bytes, and a daemon started with -warm must finish its warm
# units and reconcile dynloop_warmer_cells_total with /v1/stats.
# CI runs this; it is also handy locally: scripts/store_smoke.sh
set -euo pipefail

ADDR="127.0.0.1:${SMOKE_PORT:-19097}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
BIN="$WORK/dynloop"
STORE="$WORK/store"
EXP_ARGS=(all -bench swim,compress -n 200000)
SERVE_PID=""

cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -9 "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "store_smoke: FAIL: $*" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "daemon at $BASE never became healthy"
}

# metric NAME FILE prints one series value from a /metrics scrape.
metric() {
  awk -v m="$1" '$1 == m {print $2}' "$2"
}

# traversals FILE extracts the traversal count from a -progress obs line.
traversals() {
  sed -n 's/.* \([0-9][0-9]*\) traversals.*/\1/p' "$1" | tail -1
}

echo "store_smoke: building"
go build -o "$BIN" ./cmd/dynloop

echo "store_smoke: generate a garbage-heavy store (75% dead) and audit it"
"$BIN" store gen -store "$STORE" -keys 50000 -rounds 4 -valbytes 200 -segbytes $((4 << 20)) >"$WORK/gen.txt"
cat "$WORK/gen.txt"
"$BIN" store verify -store "$STORE" >"$WORK/verify1.txt" || fail "fresh store failed verify"

echo "store_smoke: cold experiment into the store"
"$BIN" experiment "${EXP_ARGS[@]}" -store "$STORE" -progress >"$WORK/render-cold.txt" 2>"$WORK/cold.log"

echo "store_smoke: warm re-render, sidecar-opened"
"$BIN" experiment "${EXP_ARGS[@]}" -store "$STORE" -progress >"$WORK/render-sidecar.txt" 2>"$WORK/sidecar.log"
cmp "$WORK/render-cold.txt" "$WORK/render-sidecar.txt" || fail "sidecar-opened render differs from cold render"
t=$(traversals "$WORK/sidecar.log")
[ "$t" = "0" ] || fail "sidecar-opened warm render made $t traversals (want 0)"
grep -q " 0 disk hits" "$WORK/sidecar.log" && fail "warm render reported zero disk hits"

echo "store_smoke: warm re-render, scan-opened (sidecars deleted)"
rm "$STORE"/seg-*.dlidx
"$BIN" experiment "${EXP_ARGS[@]}" -store "$STORE" -progress >"$WORK/render-scan.txt" 2>"$WORK/scan.log"
cmp "$WORK/render-cold.txt" "$WORK/render-scan.txt" || fail "scan-opened render differs from cold render"
t=$(traversals "$WORK/scan.log")
[ "$t" = "0" ] || fail "scan-opened warm render made $t traversals (want 0)"
ls "$STORE"/seg-*.dlidx >/dev/null 2>&1 || fail "scan open did not rewrite the index sidecars"

echo "store_smoke: compact reclaims >=90% of dead bytes"
DEAD_BEFORE=$("$BIN" store stats -store "$STORE" | awk '/dead_bytes/ {print $2}')
[ "$DEAD_BEFORE" -gt 0 ] || fail "store has no dead bytes to reclaim"
"$BIN" store compact -store "$STORE" >"$WORK/compact.txt"
cat "$WORK/compact.txt"
RECLAIMED=$(sed -n 's/.*(\([0-9][0-9]*\) reclaimed).*/\1/p' "$WORK/compact.txt")
[ -n "$RECLAIMED" ] || fail "compact did not report reclaimed bytes"
[ "$RECLAIMED" -ge $((DEAD_BEFORE * 9 / 10)) ] || fail "compact reclaimed $RECLAIMED of $DEAD_BEFORE dead bytes (<90%)"
"$BIN" store verify -store "$STORE" >"$WORK/verify2.txt" || fail "compacted store failed verify"

echo "store_smoke: warm re-render, compacted store"
"$BIN" experiment "${EXP_ARGS[@]}" -store "$STORE" -progress >"$WORK/render-compacted.txt" 2>"$WORK/compacted.log"
cmp "$WORK/render-cold.txt" "$WORK/render-compacted.txt" || fail "compacted render differs from cold render"
t=$(traversals "$WORK/compacted.log")
[ "$t" = "0" ] || fail "compacted warm render made $t traversals (want 0)"

echo "store_smoke: store ls opens via sidecars"
"$BIN" store ls -store "$STORE" >"$WORK/ls.txt"
grep -q "0 scan rebuilds" "$WORK/ls.txt" || fail "store ls had to rebuild sidecars: $(cat "$WORK/ls.txt")"

echo "store_smoke: background warmer on the daemon"
"$BIN" serve -addr "$ADDR" -parallel 2 -store "$STORE" \
  -warm table2 -warm-bench swim -queue-wait 5s 2>"$WORK/serve.log" &
SERVE_PID=$!
wait_healthy
for _ in $(seq 1 300); do
  STATS="$(curl -sf "$BASE/v1/stats")"
  case "$STATS" in
    *'"running":false'*) break ;;
  esac
  sleep 0.1
done
echo "store_smoke: warm stats: $STATS"
case "$STATS" in
  *'"warmer"'*) ;;
  *) fail "/v1/stats has no warmer section: $STATS" ;;
esac
case "$STATS" in
  *'"errors":0'*) ;;
  *) fail "warmer reported errors: $STATS" ;;
esac
CELLS=$(echo "$STATS" | sed -n 's/.*"warmer":{[^}]*"cells":\([0-9]*\).*/\1/p')
[ -n "$CELLS" ] && [ "$CELLS" -gt 0 ] || fail "warmer warmed no cells: $STATS"
curl -sf "$BASE/metrics" >"$WORK/metrics.txt"
MCELLS=$(metric dynloop_warmer_cells_total "$WORK/metrics.txt")
[ "$MCELLS" = "$CELLS" ] || fail "dynloop_warmer_cells_total=$MCELLS does not reconcile with stats cells=$CELLS"

kill -INT "$SERVE_PID"
code=0
wait "$SERVE_PID" || code=$?
SERVE_PID=""
[ "$code" -eq 0 ] || fail "daemon exited $code after SIGINT (want graceful 0)"
grep -q "^warmer: " "$WORK/serve.log" || fail "shutdown summary missing warmer line"
grep -q "^store: " "$WORK/serve.log" || fail "shutdown summary missing store line"

echo "store_smoke: PASS"
