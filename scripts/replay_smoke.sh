#!/usr/bin/env bash
# replay_smoke.sh — end-to-end smoke test for the trace replay tier.
#
# Builds the CLI, renders an interpreted reference sweep and grid, then
# runs the same work with a trace archive attached: the cold run must
# record (nonzero "trace records" in the runner stats line), and a second
# run against a FRESH result store — so every cell is cold again — must
# be served entirely by replay (zero records, nonzero replays) while
# rendering byte-identical output — every leg that asserts replays in
# its stderr log diffs the stdout render of that same invocation
# against the interpreted reference. The warm archive is then rendered
# once per delivery configuration (reference interpreter, forced
# full-plane events, 4-way sharded broadcast) and each render must
# stay byte-identical: the split-plane negotiation and the sharded
# segment forwarding may never change results. Finishes with the trace
# subcommands:
# `trace record` reports already-archived benchmarks as replayed,
# `trace ls` lists the recordings, and `trace verify` replays every
# archived stream end to end. CI runs this; it is also handy locally:
# scripts/replay_smoke.sh
set -euo pipefail

WORK="$(mktemp -d)"
BIN="$WORK/dynloop"
TRACES="$WORK/traces"
SWEEP_ARGS=(-bench swim,compress -policy str,str3 -tus 2,4 -n 200000)

cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT

fail() { echo "replay_smoke: FAIL: $*" >&2; exit 1; }

echo "replay_smoke: building"
go build -o "$BIN" ./cmd/dynloop

echo "replay_smoke: interpreted references"
"$BIN" sweep "${SWEEP_ARGS[@]}" -parallel 1 >"$WORK/ref-sweep.txt"
cat >"$WORK/grid.json" <<'JSON'
{
  "title": "smoke: seed sweep at unpaper TU counts",
  "kind": "spec",
  "benchmarks": ["swim", "compress"],
  "seeds": [1, 2],
  "tus": [3, 5],
  "policies": ["str"],
  "budgets": [200000]
}
JSON
"$BIN" grid -spec "$WORK/grid.json" -parallel 1 >"$WORK/ref-grid.txt"

echo "replay_smoke: cold run records"
"$BIN" sweep "${SWEEP_ARGS[@]}" -traces "$TRACES" -store "$WORK/store1" -parallel 4 -progress \
  >"$WORK/cold-sweep.txt" 2>"$WORK/cold.log"
cmp "$WORK/ref-sweep.txt" "$WORK/cold-sweep.txt" || fail "traced cold sweep differs from interpreted run"
grep -E '[1-9][0-9]* trace records' "$WORK/cold.log" >/dev/null \
  || fail "cold run recorded nothing: $(cat "$WORK/cold.log")"

echo "replay_smoke: fresh store, warm archive — replay only"
"$BIN" sweep "${SWEEP_ARGS[@]}" -traces "$TRACES" -store "$WORK/store2" -parallel 4 -progress \
  >"$WORK/warm-sweep.txt" 2>"$WORK/warm.log"
cmp "$WORK/ref-sweep.txt" "$WORK/warm-sweep.txt" || fail "replayed sweep differs from interpreted run"
grep -E '[1-9][0-9]* trace replays, 0 trace records' "$WORK/warm.log" >/dev/null \
  || fail "warm-archive run did not replay everything: $(cat "$WORK/warm.log")"

echo "replay_smoke: delivery configurations over the warm archive"
# Same work, three delivery-only knobs: each run must still be served
# by replay alone AND render the exact interpreted bytes.
for leg in "-reference" "-fullplanes" "-shards 4"; do
  # shellcheck disable=SC2086
  "$BIN" sweep "${SWEEP_ARGS[@]}" $leg -traces "$TRACES" -parallel 4 -progress \
    >"$WORK/leg-sweep.txt" 2>"$WORK/leg.log"
  cmp "$WORK/ref-sweep.txt" "$WORK/leg-sweep.txt" \
    || fail "replayed sweep with $leg differs from interpreted run"
  grep -E '[1-9][0-9]* trace replays, 0 trace records' "$WORK/leg.log" >/dev/null \
    || fail "sweep with $leg was not served by replay: $(cat "$WORK/leg.log")"
done

echo "replay_smoke: grid over the archive"
# The grid adds seed 2, which the sweep never recorded: the first pass
# replays the seed-1 groups and records the seed-2 ones, the second pass
# replays everything.
"$BIN" grid -spec "$WORK/grid.json" -traces "$TRACES" -parallel 4 -progress \
  >"$WORK/grid1.txt" 2>"$WORK/grid1.log"
cmp "$WORK/ref-grid.txt" "$WORK/grid1.txt" || fail "traced grid differs from interpreted run"
grep -E '[1-9][0-9]* trace replays' "$WORK/grid1.log" >/dev/null \
  || fail "grid did not replay the archived seed-1 groups: $(cat "$WORK/grid1.log")"
"$BIN" grid -spec "$WORK/grid.json" -traces "$TRACES" -parallel 4 -progress \
  >"$WORK/grid2.txt" 2>"$WORK/grid2.log"
cmp "$WORK/ref-grid.txt" "$WORK/grid2.txt" || fail "replayed grid differs from interpreted run"
grep -E '[1-9][0-9]* trace replays, 0 trace records' "$WORK/grid2.log" >/dev/null \
  || fail "grid over fully warm archive re-recorded: $(cat "$WORK/grid2.log")"

echo "replay_smoke: trace subcommands"
"$BIN" trace record -traces "$TRACES" -bench swim -n 200000 >"$WORK/record.txt"
grep 'already archived, replayed' "$WORK/record.txt" >/dev/null \
  || fail "trace record re-recorded an archived benchmark: $(cat "$WORK/record.txt")"
"$BIN" trace ls -traces "$TRACES" >"$WORK/ls.txt"
grep swim "$WORK/ls.txt" >/dev/null || fail "trace ls is missing swim: $(cat "$WORK/ls.txt")"
grep compress "$WORK/ls.txt" >/dev/null || fail "trace ls is missing compress: $(cat "$WORK/ls.txt")"
"$BIN" trace verify -traces "$TRACES" || fail "trace verify rejected a freshly recorded archive"

echo "replay_smoke: PASS"
