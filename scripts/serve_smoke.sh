#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test for the grid-serving daemon.
#
# Builds the CLI, starts `dynloop serve` with a persistent store, runs
# the same small sweep locally and remotely (twice, so the second hits
# the daemon's cache), asserts all three outputs are byte-identical,
# does the same for a user-authored declarative grid spec (local run vs
# POST /v1/grid, plus a registered grid by name, plus the /v1/grids
# listing), restarts the daemon over the warm store and asserts the
# sweep is served purely from disk (zero traversals), then restarts it
# again with a warm trace archive and a FRESH store and asserts the
# sweep is served purely by replay (zero traversals, nonzero
# replay_runs, byte-identical to the local run), then SIGINTs the
# daemon and asserts a graceful zero exit. CI runs this; it is also
# handy locally: scripts/serve_smoke.sh
set -euo pipefail

ADDR="127.0.0.1:${SMOKE_PORT:-19095}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
BIN="$WORK/dynloop"
STORE="$WORK/store"
SWEEP_ARGS=(-bench swim,compress -policy str,str3 -tus 2,4 -n 200000)
SERVE_PID=""

cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -9 "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "daemon at $BASE never became healthy"
}

start_daemon() {
  local name=$1
  shift
  "$BIN" serve -addr "$ADDR" -parallel 4 "$@" 2>"$WORK/serve-$name.log" &
  SERVE_PID=$!
  wait_healthy
}

stop_daemon_gracefully() {
  kill -INT "$SERVE_PID"
  local code=0
  wait "$SERVE_PID" || code=$?
  SERVE_PID=""
  [ "$code" -eq 0 ] || fail "daemon exited $code after SIGINT (want graceful 0)"
}

echo "serve_smoke: building"
go build -o "$BIN" ./cmd/dynloop

echo "serve_smoke: local reference sweep"
"$BIN" sweep "${SWEEP_ARGS[@]}" -parallel 1 >"$WORK/local.txt"

echo "serve_smoke: local reference grids"
cat >"$WORK/grid.json" <<'JSON'
{
  "title": "smoke: seed sweep at unpaper TU counts",
  "kind": "spec",
  "benchmarks": ["swim", "compress"],
  "seeds": [1, 2],
  "tus": [3, 5],
  "policies": ["str"],
  "budgets": [200000]
}
JSON
"$BIN" grid -spec "$WORK/grid.json" -parallel 1 >"$WORK/grid-local.txt"
"$BIN" grid -name table2 -bench swim,compress -n 200000 -parallel 1 >"$WORK/named-local.txt"

# metric NAME [FILE] prints one series value from a /metrics scrape.
metric() {
  awk -v m="$1" '$1 == m {print $2}' "$2"
}

echo "serve_smoke: daemon round trip"
start_daemon cold -store "$STORE"
curl -sf "$BASE/metrics" >"$WORK/metrics0.txt"
"$BIN" sweep "${SWEEP_ARGS[@]}" -remote "$BASE" >"$WORK/remote1.txt"
"$BIN" sweep "${SWEEP_ARGS[@]}" -remote "$BASE" >"$WORK/remote2.txt"
cmp "$WORK/local.txt" "$WORK/remote1.txt" || fail "remote sweep differs from local run"
cmp "$WORK/remote1.txt" "$WORK/remote2.txt" || fail "repeat remote sweep not stable"

echo "serve_smoke: metrics moved and reconcile with /v1/stats"
curl -sf "$BASE/metrics" >"$WORK/metrics1.txt"
for m in dynloop_runner_jobs_submitted_total dynloop_runner_jobs_executed_total \
         dynloop_runner_cache_hits_total dynloop_interp_instructions_total \
         'dynloop_http_requests_total{endpoint="/v1/sweep"}'; do
  before=$(metric "$m" "$WORK/metrics0.txt")
  after=$(metric "$m" "$WORK/metrics1.txt")
  [ -n "$before" ] && [ -n "$after" ] || fail "series $m missing from scrape"
  [ "$after" -gt "$before" ] || fail "series $m did not move across the sweeps ($before -> $after)"
done
# A fresh daemon has exactly one runner, so the scraped process totals
# must EQUAL the runner's own /v1/stats counters, not just track them.
STATS="$(curl -sf "$BASE/v1/stats")"
for pair in "dynloop_runner_jobs_submitted_total submitted" \
            "dynloop_runner_jobs_executed_total executed" \
            "dynloop_runner_cache_hits_total cache_hits" \
            "dynloop_runner_group_runs_total group_runs"; do
  series=${pair% *}
  field=${pair#* }
  scraped=$(curl -sf "$BASE/metrics" | awk -v m="$series" '$1 == m {print $2}')
  reported=$(echo "$STATS" | grep -o "\"$field\":[0-9]*" | head -1 | cut -d: -f2)
  [ "$scraped" = "$reported" ] || fail "$series=$scraped does not reconcile with stats $field=$reported"
done

echo "serve_smoke: custom grid spec over POST /v1/grid"
"$BIN" grid -spec "$WORK/grid.json" -remote "$BASE" >"$WORK/grid-remote.txt"
cmp "$WORK/grid-local.txt" "$WORK/grid-remote.txt" || fail "remote custom grid differs from local run"
"$BIN" grid -name table2 -bench swim,compress -n 200000 -remote "$BASE" >"$WORK/named-remote.txt"
cmp "$WORK/named-local.txt" "$WORK/named-remote.txt" || fail "remote named grid differs from local run"
GRIDS="$(curl -sf "$BASE/v1/grids")"
case "$GRIDS" in
  *'"table1"'*) ;;
  *) fail "/v1/grids listing is missing table1: $GRIDS" ;;
esac
stop_daemon_gracefully

echo "serve_smoke: warm-store restart"
start_daemon warm -store "$STORE"
"$BIN" sweep "${SWEEP_ARGS[@]}" -remote "$BASE" >"$WORK/remote3.txt"
cmp "$WORK/local.txt" "$WORK/remote3.txt" || fail "warm-store sweep differs from local run"
STATS="$(curl -sf "$BASE/v1/stats")"
echo "serve_smoke: warm stats: $STATS"
case "$STATS" in
  *'"traversals":0'*) ;;
  *) fail "warm-store daemon re-ran traversals: $STATS" ;;
esac
case "$STATS" in
  *'"executed":0'*) ;;
  *) fail "warm-store daemon re-executed cells: $STATS" ;;
esac
stop_daemon_gracefully

echo "serve_smoke: warm trace archive, fresh store — replay tier"
TRACES="$WORK/traces"
"$BIN" sweep "${SWEEP_ARGS[@]}" -traces "$TRACES" -parallel 1 >/dev/null
start_daemon traces -store "$WORK/store-traces" -traces "$TRACES"
"$BIN" sweep "${SWEEP_ARGS[@]}" -remote "$BASE" >"$WORK/remote4.txt"
cmp "$WORK/local.txt" "$WORK/remote4.txt" || fail "replayed remote sweep differs from local run"
STATS="$(curl -sf "$BASE/v1/stats")"
echo "serve_smoke: replay stats: $STATS"
case "$STATS" in
  *'"traversals":0'*) ;;
  *) fail "traced daemon made interpreter traversals: $STATS" ;;
esac
case "$STATS" in
  *'"replay_runs":0'*) fail "traced daemon never replayed: $STATS" ;;
esac
case "$STATS" in
  *'"record_runs":0'*) ;;
  *) fail "traced daemon re-recorded archived groups: $STATS" ;;
esac
stop_daemon_gracefully

echo "serve_smoke: PASS"
