#!/usr/bin/env bash
# soak_smoke.sh — sustained multi-client soak of the grid-serving daemon.
#
# Builds the CLI, starts `dynloop serve`, and drives it with `dynloop
# soak`: N concurrent clients looping the same small sweep for a fixed
# duration. The soak command scrapes GET /metrics before and after the
# load window, derives throughput and p50/p99 latency from the exported
# histogram deltas, and asserts the scraped runner counters reconcile
# exactly with the daemon's own /v1/stats (the command exits non-zero on
# any mismatch). The report lands in BENCH_soak.json at the repo root
# when run from there, or in $SOAK_OUT.
#
# Knobs: SOAK_CLIENTS (default 4), SOAK_DURATION (default 5s),
# SOAK_PORT (default 19097), SOAK_OUT (default ./BENCH_soak.json).
set -euo pipefail

ADDR="127.0.0.1:${SOAK_PORT:-19097}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
BIN="$WORK/dynloop"
OUT="${SOAK_OUT:-BENCH_soak.json}"
CLIENTS="${SOAK_CLIENTS:-4}"
DURATION="${SOAK_DURATION:-5s}"
SERVE_PID=""

cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -9 "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "soak_smoke: FAIL: $*" >&2; exit 1; }

echo "soak_smoke: building"
go build -o "$BIN" ./cmd/dynloop

echo "soak_smoke: starting daemon"
"$BIN" serve -addr "$ADDR" -parallel 4 2>"$WORK/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || fail "daemon at $BASE never became healthy"

echo "soak_smoke: soaking $CLIENTS clients for $DURATION"
"$BIN" soak -remote "$BASE" -clients "$CLIENTS" -duration "$DURATION" -o "$OUT" \
  || fail "soak run failed (reconciliation or load error; see above)"

# Sanity-gate the report: the soak must have sustained real traffic and
# produced finite quantiles. Thresholds are deliberately loose — this
# smoke asserts the plumbing, bench_smoke.sh asserts performance.
reqs=$(grep -o '"requests": *[0-9]*' "$OUT" | grep -o '[0-9]*')
errs=$(grep -o '"errors": *[0-9]*' "$OUT" | grep -o '[0-9]*')
rec=$(grep -o '"reconciled": *\(true\|false\)' "$OUT" | grep -o 'true\|false')
[ "$reqs" -ge 10 ] || fail "only $reqs requests completed (want >= 10)"
[ "$errs" -eq 0 ] || fail "$errs requests errored"
[ "$rec" = "true" ] || fail "metrics did not reconcile with /v1/stats"

kill -INT "$SERVE_PID"
code=0
wait "$SERVE_PID" || code=$?
SERVE_PID=""
[ "$code" -eq 0 ] || fail "daemon exited $code after SIGINT (want graceful 0)"

echo "soak_smoke: report:"
cat "$OUT"
echo "soak_smoke: PASS"
