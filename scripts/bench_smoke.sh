#!/usr/bin/env bash
# bench_smoke.sh — interpreter-core performance regression gate.
#
# Runs BenchmarkRun (the full pipeline at the default batch size) once
# at a fixed iteration count and fails if ns/instruction exceeds the
# pinned ceiling. The ceiling is deliberately loose — the predecoded
# core measures ~4.7-5.1 ns/instr on the reference host (see
# BENCH_interp.json) and the ceiling sits at 8.5, just under the 9.0 of
# the pre-predecode core — so normal runner-to-runner noise passes but
# losing the tentpole optimisation (or an accidental fall-back to the
# reference path) fails loudly. Also asserts the benchmark still
# reports 0 allocs/op: the zero-allocation batch path is part of the
# perf contract. CI runs this; locally: scripts/bench_smoke.sh
set -euo pipefail

CEILING_NS="${BENCH_SMOKE_CEILING_NS:-8.5}"
ITERS="${BENCH_SMOKE_ITERS:-2000000}"

fail() { echo "bench_smoke: FAIL: $*" >&2; exit 1; }

echo "bench_smoke: BenchmarkRun x$ITERS (ceiling ${CEILING_NS} ns/instr)"
OUT="$(go test -run='^$' -bench='^BenchmarkRun$' -benchtime="${ITERS}x" .)"
echo "$OUT"

LINE="$(echo "$OUT" | grep -E '^BenchmarkRun\b')" || fail "no BenchmarkRun result line"
NS="$(echo "$LINE" | awk '{for (i=1; i<NF; i++) if ($(i+1) == "ns/op") print $i}')"
ALLOCS="$(echo "$LINE" | awk '{for (i=1; i<NF; i++) if ($(i+1) == "allocs/op") print $i}')"
[ -n "$NS" ] || fail "could not parse ns/op from: $LINE"
[ -n "$ALLOCS" ] || fail "could not parse allocs/op from: $LINE"

awk -v ns="$NS" -v ceil="$CEILING_NS" 'BEGIN { exit !(ns <= ceil) }' ||
	fail "BenchmarkRun at ${NS} ns/instr exceeds the ${CEILING_NS} ns ceiling"
[ "$ALLOCS" = "0" ] || fail "BenchmarkRun allocates (${ALLOCS} allocs/op), want 0"

echo "bench_smoke: OK (${NS} ns/instr, ${ALLOCS} allocs/op)"
