#!/usr/bin/env bash
# bench_smoke.sh — interpreter-core performance regression gate.
#
# Gate 1 runs BenchmarkRun (the full pipeline at the default batch
# size) once at a fixed iteration count and fails if ns/instruction
# exceeds the pinned ceiling. The ceiling is deliberately loose — the
# split-plane core measures ~4.5-4.8 ns/instr on the reference host
# (see BENCH_interp.json v2) and the ceiling sits at 6.5, well under
# the ~8.9 of the reference path — so normal runner-to-runner noise
# passes but losing a tentpole optimisation (or an accidental
# fall-back to the reference path) fails loudly. Also asserts the
# benchmark still reports 0 allocs/op on both legs: the
# zero-allocation batch path is part of the perf contract.
#
# Gate 2 runs the ctl-plane legs of BenchmarkTraceReplay and fails if
# a full replay (header-plane decode + consumer delivery) costs more
# than interpretation of the same stream into the same sink. The two
# sit ~1% apart on the reference host (7.2 vs 7.3 ns/instr), so the
# gate allows a noise ratio; losing the header-plane decode puts
# replay at full-decode cost (~+22%), which trips it.
#
# CI runs this; locally: scripts/bench_smoke.sh
set -euo pipefail

CEILING_NS="${BENCH_SMOKE_CEILING_NS:-6.5}"
REPLAY_RATIO="${BENCH_SMOKE_REPLAY_RATIO:-1.15}"
ITERS="${BENCH_SMOKE_ITERS:-2000000}"

fail() { echo "bench_smoke: FAIL: $*" >&2; exit 1; }

# parse_line VAR_PREFIX REGEX OUT — extracts ns/op and allocs/op from
# the first benchmark result line matching REGEX.
parse() {
	local line
	line="$(echo "$2" | grep -E "$1")" || fail "no result line matching $1"
	NS="$(echo "$line" | awk '{for (i=1; i<NF; i++) if ($(i+1) == "ns/op") print $i}')"
	ALLOCS="$(echo "$line" | awk '{for (i=1; i<NF; i++) if ($(i+1) == "allocs/op") print $i}')"
	[ -n "$NS" ] || fail "could not parse ns/op from: $line"
	[ -n "$ALLOCS" ] || fail "could not parse allocs/op from: $line"
}

echo "bench_smoke: BenchmarkRun x$ITERS (ceiling ${CEILING_NS} ns/instr)"
OUT="$(go test -run='^$' -bench='^BenchmarkRun$' -benchtime="${ITERS}x" .)"
echo "$OUT"

parse '^BenchmarkRun\b' "$OUT"
awk -v ns="$NS" -v ceil="$CEILING_NS" 'BEGIN { exit !(ns <= ceil) }' ||
	fail "BenchmarkRun at ${NS} ns/instr exceeds the ${CEILING_NS} ns ceiling"
[ "$ALLOCS" = "0" ] || fail "BenchmarkRun allocates (${ALLOCS} allocs/op), want 0"
RUN_NS="$NS"

echo "bench_smoke: BenchmarkTraceReplay interpret vs replay x$ITERS (ratio <= ${REPLAY_RATIO})"
OUT="$(go test -run='^$' -bench='^BenchmarkTraceReplay/(interpret|replay)$' -benchtime="${ITERS}x" .)"
echo "$OUT"

parse '^BenchmarkTraceReplay/interpret\b' "$OUT"
INTERP_NS="$NS"
[ "$ALLOCS" = "0" ] || fail "interpret leg allocates (${ALLOCS} allocs/op), want 0"
parse '^BenchmarkTraceReplay/replay\b' "$OUT"
REPLAY_NS="$NS"
[ "$ALLOCS" = "0" ] || fail "replay leg allocates (${ALLOCS} allocs/op), want 0"

awk -v r="$REPLAY_NS" -v i="$INTERP_NS" -v k="$REPLAY_RATIO" 'BEGIN { exit !(r <= i * k) }' ||
	fail "full replay (${REPLAY_NS} ns/instr) regressed above interpretation (${INTERP_NS} ns/instr) beyond the ${REPLAY_RATIO}x noise ratio"

echo "bench_smoke: OK (run ${RUN_NS} ns/instr; replay ${REPLAY_NS} vs interpret ${INTERP_NS} ns/instr; 0 allocs)"
