package dynloop_test

import (
	"context"
	"fmt"
	"testing"

	"dynloop"
	"dynloop/internal/expt"
	"dynloop/internal/grid"
	"dynloop/internal/harness"
	"dynloop/internal/runner"
	"dynloop/internal/trace"
	"dynloop/internal/tracefile"
)

// newTraces opens a fresh trace archive in a test temp dir.
func newTraces(t *testing.T) *harness.Traces {
	t.Helper()
	a, err := tracefile.OpenArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return harness.NewTraces(a)
}

// TestReplayEquivalenceAllGrids is the replay tier's acceptance suite:
// every registered grid spec renders byte-identically whether its cells
// are fed by the interpreter or by decode-only replay from the trace
// archive — at 1 and 8 workers and across interpreter batch sizes. A
// final pass over the fully warm archive must make zero interpreter
// traversals: record once, replay everywhere.
func TestReplayEquivalenceAllGrids(t *testing.T) {
	ctx := context.Background()
	base := expt.Config{Budget: 50_000, Benchmarks: []string{"m88ksim", "perl"}}

	// Interpreted reference render for every registered grid.
	ref := make(map[string]string)
	refCfg := base
	refCfg.Runner = runner.New(runner.Config{Workers: 4})
	for _, name := range grid.Names() {
		e, ok := grid.Lookup(name)
		if !ok {
			t.Fatalf("grid %q vanished from the registry", name)
		}
		res, err := grid.Run(ctx, refCfg, e.Spec)
		if err != nil {
			t.Fatalf("%s (interpreted): %v", name, err)
		}
		out, err := e.Render(res)
		if err != nil {
			t.Fatalf("%s render: %v", name, err)
		}
		ref[name] = out
	}

	// One shared archive across every traced configuration: the first
	// pass records, everything after replays the same files.
	tr := newTraces(t)
	for _, parallel := range []int{1, 8} {
		for _, batch := range []int{0, 256} {
			cfg := base
			cfg.Runner = runner.New(runner.Config{Workers: parallel})
			cfg.Traces = tr
			cfg.BatchSize = batch
			for _, name := range grid.Names() {
				e, _ := grid.Lookup(name)
				res, err := grid.Run(ctx, cfg, e.Spec)
				if err != nil {
					t.Fatalf("%s (parallel=%d batch=%d): %v", name, parallel, batch, err)
				}
				got, err := e.Render(res)
				if err != nil {
					t.Fatalf("%s render: %v", name, err)
				}
				if got != ref[name] {
					t.Errorf("%s (parallel=%d batch=%d): traced render differs from interpreted:\n--- traced ---\n%s\n--- interpreted ---\n%s",
						name, parallel, batch, got, ref[name])
				}
			}
		}
	}

	st := tr.Stats()
	if st.Records == 0 || st.Replays == 0 {
		t.Fatalf("trace tier never engaged: %+v", st)
	}

	// Fully warm archive: one more complete pass, zero traversals.
	before := harness.Traversals()
	cfg := base
	cfg.Runner = runner.New(runner.Config{Workers: 8})
	cfg.Traces = tr
	for _, name := range grid.Names() {
		e, _ := grid.Lookup(name)
		res, err := grid.Run(ctx, cfg, e.Spec)
		if err != nil {
			t.Fatalf("%s (warm): %v", name, err)
		}
		got, err := e.Render(res)
		if err != nil {
			t.Fatalf("%s render: %v", name, err)
		}
		if got != ref[name] {
			t.Errorf("%s (warm): render differs from interpreted", name)
		}
	}
	if got := harness.Traversals() - before; got != 0 {
		t.Errorf("warm-archive pass made %d interpreter traversals, want 0", got)
	}
	if after := tr.Stats(); after.Records != st.Records {
		t.Errorf("warm-archive pass recorded %d new traces, want 0", after.Records-st.Records)
	}
}

// TestPlaneEquivalenceAllGrids is the facet split's acceptance suite:
// every registered grid renders byte-identically whether its ctl-only
// traversals run on the control plane (the default), on forced
// full-Event delivery, or on the reference interpreter — at 1 and 8
// workers, with inline and sharded (4) broadcast delivery, interpreted
// and replayed from the trace archive.
func TestPlaneEquivalenceAllGrids(t *testing.T) {
	ctx := context.Background()
	base := expt.Config{Budget: 50_000, Benchmarks: []string{"m88ksim", "perl"}}

	render := func(cfg expt.Config, leg string) map[string]string {
		t.Helper()
		out := make(map[string]string)
		for _, name := range grid.Names() {
			e, ok := grid.Lookup(name)
			if !ok {
				t.Fatalf("grid %q vanished from the registry", name)
			}
			res, err := grid.Run(ctx, cfg, e.Spec)
			if err != nil {
				t.Fatalf("%s (%s): %v", name, leg, err)
			}
			s, err := e.Render(res)
			if err != nil {
				t.Fatalf("%s render (%s): %v", name, leg, err)
			}
			out[name] = s
		}
		return out
	}
	compare := func(got, want map[string]string, leg string) {
		t.Helper()
		for name := range want {
			if got[name] != want[name] {
				t.Errorf("%s (%s): render differs from reference:\n--- got ---\n%s\n--- want ---\n%s",
					name, leg, got[name], want[name])
			}
		}
	}

	// Reference renders: the two-level reference interpreter on forced
	// full-plane delivery — no predecode, no fusion, no facet split.
	refCfg := base
	refCfg.Runner = runner.New(runner.Config{Workers: 4})
	refCfg.Reference = true
	refCfg.FullPlanes = true
	ref := render(refCfg, "reference")

	// Forced full-plane predecoded path.
	fullCfg := base
	fullCfg.Runner = runner.New(runner.Config{Workers: 4})
	fullCfg.FullPlanes = true
	compare(render(fullCfg, "full-plane"), ref, "full-plane")

	// Control-plane (default) path, interpreted, across worker counts and
	// broadcast shard counts.
	for _, parallel := range []int{1, 8} {
		for _, shards := range []int{0, 4} {
			cfg := base
			cfg.Runner = runner.New(runner.Config{Workers: parallel})
			cfg.Shards = shards
			leg := fmt.Sprintf("interpreted parallel=%d shards=%d", parallel, shards)
			compare(render(cfg, leg), ref, leg)
		}
	}

	// Replayed: one recording pass warms the archive, then every later
	// pass is decode-only — same comparisons on the replay path.
	tr := newTraces(t)
	warm := base
	warm.Runner = runner.New(runner.Config{Workers: 4})
	warm.Traces = tr
	compare(render(warm, "recording"), ref, "recording")
	if st := tr.Stats(); st.Records == 0 {
		t.Fatalf("recording pass recorded nothing: %+v", st)
	}
	for _, parallel := range []int{1, 8} {
		for _, shards := range []int{0, 4} {
			cfg := base
			cfg.Runner = runner.New(runner.Config{Workers: parallel})
			cfg.Shards = shards
			cfg.Traces = tr
			leg := fmt.Sprintf("replayed parallel=%d shards=%d", parallel, shards)
			before := tr.Stats().Replays
			compare(render(cfg, leg), ref, leg)
			if tr.Stats().Replays == before {
				t.Fatalf("%s: no replays happened — comparison was not on the replay path", leg)
			}
		}
	}
	// And a replayed full-plane leg: the forced facet must not disturb
	// the archive decoder either.
	fullReplay := base
	fullReplay.Runner = runner.New(runner.Config{Workers: 8})
	fullReplay.Traces = tr
	fullReplay.FullPlanes = true
	compare(render(fullReplay, "replayed full-plane"), ref, "replayed full-plane")
}

// TestReplayTruncationEquivalence: one long recording serves every
// smaller budget with the exact stream a fresh interpretation of that
// budget produces — through the public facade.
func TestReplayTruncationEquivalence(t *testing.T) {
	ctx := context.Background()
	bm, err := dynloop.BenchmarkByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	build := func() (*dynloop.Unit, error) { return bm.Build(1) }

	tr := newTraces(t)
	res, replayed, err := tr.MultiRun(ctx, bm.Name, 1, build, dynloop.MultiRunConfig{Budget: 80_000})
	if err != nil {
		t.Fatal(err)
	}
	if replayed || res.Executed != 80_000 {
		t.Fatalf("record run: %+v (replayed=%v)", res, replayed)
	}

	for _, budget := range []uint64{1_000, 40_000, 80_000} {
		u, err := build()
		if err != nil {
			t.Fatal(err)
		}
		var want trace.Hash
		refRes, err := harness.MultiRun(u, harness.MultiConfig{Budget: budget}, trace.AsPass(&want))
		if err != nil {
			t.Fatal(err)
		}
		var got trace.Hash
		res, replayed, err := tr.MultiRun(ctx, bm.Name, 1, build, dynloop.MultiRunConfig{Budget: budget}, trace.AsPass(&got))
		if err != nil {
			t.Fatal(err)
		}
		if !replayed {
			t.Fatalf("budget %d not served by the 80k recording", budget)
		}
		if res.Executed != refRes.Executed || res.Halted != refRes.Halted {
			t.Fatalf("budget %d: replay %+v, interpret %+v", budget, res, refRes)
		}
		if got.Sum != want.Sum {
			t.Fatalf("budget %d: replay hash %x != interpreted hash %x", budget, got.Sum, want.Sum)
		}
	}
}
