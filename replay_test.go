package dynloop_test

import (
	"context"
	"testing"

	"dynloop"
	"dynloop/internal/expt"
	"dynloop/internal/grid"
	"dynloop/internal/harness"
	"dynloop/internal/runner"
	"dynloop/internal/trace"
	"dynloop/internal/tracefile"
)

// newTraces opens a fresh trace archive in a test temp dir.
func newTraces(t *testing.T) *harness.Traces {
	t.Helper()
	a, err := tracefile.OpenArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return harness.NewTraces(a)
}

// TestReplayEquivalenceAllGrids is the replay tier's acceptance suite:
// every registered grid spec renders byte-identically whether its cells
// are fed by the interpreter or by decode-only replay from the trace
// archive — at 1 and 8 workers and across interpreter batch sizes. A
// final pass over the fully warm archive must make zero interpreter
// traversals: record once, replay everywhere.
func TestReplayEquivalenceAllGrids(t *testing.T) {
	ctx := context.Background()
	base := expt.Config{Budget: 50_000, Benchmarks: []string{"m88ksim", "perl"}}

	// Interpreted reference render for every registered grid.
	ref := make(map[string]string)
	refCfg := base
	refCfg.Runner = runner.New(runner.Config{Workers: 4})
	for _, name := range grid.Names() {
		e, ok := grid.Lookup(name)
		if !ok {
			t.Fatalf("grid %q vanished from the registry", name)
		}
		res, err := grid.Run(ctx, refCfg, e.Spec)
		if err != nil {
			t.Fatalf("%s (interpreted): %v", name, err)
		}
		out, err := e.Render(res)
		if err != nil {
			t.Fatalf("%s render: %v", name, err)
		}
		ref[name] = out
	}

	// One shared archive across every traced configuration: the first
	// pass records, everything after replays the same files.
	tr := newTraces(t)
	for _, parallel := range []int{1, 8} {
		for _, batch := range []int{0, 256} {
			cfg := base
			cfg.Runner = runner.New(runner.Config{Workers: parallel})
			cfg.Traces = tr
			cfg.BatchSize = batch
			for _, name := range grid.Names() {
				e, _ := grid.Lookup(name)
				res, err := grid.Run(ctx, cfg, e.Spec)
				if err != nil {
					t.Fatalf("%s (parallel=%d batch=%d): %v", name, parallel, batch, err)
				}
				got, err := e.Render(res)
				if err != nil {
					t.Fatalf("%s render: %v", name, err)
				}
				if got != ref[name] {
					t.Errorf("%s (parallel=%d batch=%d): traced render differs from interpreted:\n--- traced ---\n%s\n--- interpreted ---\n%s",
						name, parallel, batch, got, ref[name])
				}
			}
		}
	}

	st := tr.Stats()
	if st.Records == 0 || st.Replays == 0 {
		t.Fatalf("trace tier never engaged: %+v", st)
	}

	// Fully warm archive: one more complete pass, zero traversals.
	before := harness.Traversals()
	cfg := base
	cfg.Runner = runner.New(runner.Config{Workers: 8})
	cfg.Traces = tr
	for _, name := range grid.Names() {
		e, _ := grid.Lookup(name)
		res, err := grid.Run(ctx, cfg, e.Spec)
		if err != nil {
			t.Fatalf("%s (warm): %v", name, err)
		}
		got, err := e.Render(res)
		if err != nil {
			t.Fatalf("%s render: %v", name, err)
		}
		if got != ref[name] {
			t.Errorf("%s (warm): render differs from interpreted", name)
		}
	}
	if got := harness.Traversals() - before; got != 0 {
		t.Errorf("warm-archive pass made %d interpreter traversals, want 0", got)
	}
	if after := tr.Stats(); after.Records != st.Records {
		t.Errorf("warm-archive pass recorded %d new traces, want 0", after.Records-st.Records)
	}
}

// TestReplayTruncationEquivalence: one long recording serves every
// smaller budget with the exact stream a fresh interpretation of that
// budget produces — through the public facade.
func TestReplayTruncationEquivalence(t *testing.T) {
	ctx := context.Background()
	bm, err := dynloop.BenchmarkByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	build := func() (*dynloop.Unit, error) { return bm.Build(1) }

	tr := newTraces(t)
	res, replayed, err := tr.MultiRun(ctx, bm.Name, 1, build, dynloop.MultiRunConfig{Budget: 80_000})
	if err != nil {
		t.Fatal(err)
	}
	if replayed || res.Executed != 80_000 {
		t.Fatalf("record run: %+v (replayed=%v)", res, replayed)
	}

	for _, budget := range []uint64{1_000, 40_000, 80_000} {
		u, err := build()
		if err != nil {
			t.Fatal(err)
		}
		var want trace.Hash
		refRes, err := harness.MultiRun(u, harness.MultiConfig{Budget: budget}, trace.AsPass(&want))
		if err != nil {
			t.Fatal(err)
		}
		var got trace.Hash
		res, replayed, err := tr.MultiRun(ctx, bm.Name, 1, build, dynloop.MultiRunConfig{Budget: budget}, trace.AsPass(&got))
		if err != nil {
			t.Fatal(err)
		}
		if !replayed {
			t.Fatalf("budget %d not served by the 80k recording", budget)
		}
		if res.Executed != refRes.Executed || res.Halted != refRes.Halted {
			t.Fatalf("budget %d: replay %+v, interpret %+v", budget, res, refRes)
		}
		if got.Sum != want.Sum {
			t.Fatalf("budget %d: replay hash %x != interpreted hash %x", budget, got.Sum, want.Sum)
		}
	}
}
