package dynloop_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"testing/quick"

	"dynloop"
	"dynloop/internal/builder"
	"dynloop/internal/client"
	"dynloop/internal/expt"
	"dynloop/internal/harness"
	"dynloop/internal/loopdet"
	"dynloop/internal/server"
	"dynloop/internal/spec"
	"dynloop/internal/wire"
)

// TestFullPipelineAllObservers runs every workload once with EVERY
// instrument attached simultaneously — the detector must serve all
// consumers from one pass without interference.
func TestFullPipelineAllObservers(t *testing.T) {
	for _, bm := range dynloop.Benchmarks() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			u, err := bm.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			stats := dynloop.NewLoopStats()
			tables := dynloop.NewTableTracker(16, 4)
			data := dynloop.NewDataStats()
			engine := dynloop.NewEngine(dynloop.EngineConfig{TUs: 4, Policy: dynloop.STRn(3)})
			res, err := dynloop.Run(u, dynloop.RunConfig{Budget: 250_000},
				stats, tables, data, engine)
			if err != nil {
				t.Fatal(err)
			}
			if res.Executed == 0 {
				t.Fatal("nothing executed")
			}
			m := engine.Metrics()
			if m.Anomalies != 0 {
				t.Fatalf("engine anomalies: %d", m.Anomalies)
			}
			tpc := m.TPC()
			if tpc < 1.0-1e-9 || tpc > 4.0+1e-9 {
				t.Fatalf("TPC %v out of [1,4]", tpc)
			}
			if s := stats.Summary(); s.Instrs != res.Executed {
				t.Fatalf("stats saw %d of %d instructions", s.Instrs, res.Executed)
			}
		})
	}
}

// TestRandomProgramsProperty drives randomly generated structured
// programs through the full pipeline and checks global invariants:
// the machine runs without errors, the CLS drains, TPC is bounded by the
// TU count, thread accounting conserves, and everything is
// deterministic.
func TestRandomProgramsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		u, err := dynloop.RandomProgram(seed)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		run := func() (harness.Result, spec.Metrics) {
			e := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STR()})
			res, err := harness.Run(u, harness.Config{Budget: 60_000}, e)
			if err != nil {
				t.Logf("seed %d: run: %v", seed, err)
				return harness.Result{}, spec.Metrics{}
			}
			return res, e.Metrics()
		}
		res1, m1 := run()
		res2, m2 := run()
		if res1.Executed == 0 {
			return false
		}
		if res1.Executed != res2.Executed || m1 != m2 {
			t.Logf("seed %d: nondeterministic", seed)
			return false
		}
		if res1.Detector.Depth() != 0 {
			t.Logf("seed %d: CLS not drained", seed)
			return false
		}
		if m1.Anomalies != 0 {
			t.Logf("seed %d: anomalies=%d", seed, m1.Anomalies)
			return false
		}
		if m1.ThreadsSpawned != m1.ThreadsPromoted+m1.ThreadsSquashed+m1.ThreadsFlushed {
			t.Logf("seed %d: thread accounting broken: %+v", seed, m1)
			return false
		}
		if tpc := m1.TPC(); tpc < 1.0-1e-9 || tpc > 4.0+1e-9 {
			t.Logf("seed %d: TPC %v out of bounds", seed, tpc)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomProgramsGroundTruth compares the detector's execution counts
// against the builder's static loop inventory on random programs: every
// detected loop head must be a loop the builder emitted.
func TestRandomProgramsGroundTruth(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		u, err := builder.Random(seed, builder.RandomOpt{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		known := make(map[uint32]bool, len(u.Loops))
		for _, li := range u.Loops {
			known[uint32(li.Head)] = true
		}
		seen := make(map[uint32]bool)
		obs := loopdet.NopObserver{}
		_ = obs
		collect := &headCollector{seen: seen}
		if _, err := harness.Run(u, harness.Config{Budget: 60_000}, collect); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for head := range seen {
			if !known[head] {
				t.Fatalf("seed %d: detector found loop @%d the builder never emitted", seed, head)
			}
		}
	}
}

type headCollector struct {
	loopdet.NopObserver
	seen map[uint32]bool
}

func (h *headCollector) ExecStart(x *loopdet.Exec) { h.seen[uint32(x.T)] = true }

// TestExperimentSubset exercises each experiment driver end to end on a
// small subset so the table/figure plumbing is covered by `go test`.
func TestExperimentSubset(t *testing.T) {
	ctx := context.Background()
	cfg := expt.Config{Budget: 120_000, Benchmarks: []string{"compress", "perl"}}
	t1, err := expt.Table1(ctx, cfg)
	if err != nil || len(t1) != 2 {
		t.Fatalf("table1: %v (%d rows)", err, len(t1))
	}
	if s := expt.RenderTable1(t1); len(s) == 0 {
		t.Fatal("empty table1 render")
	}
	t2, err := expt.Table2(ctx, cfg)
	if err != nil || len(t2) != 2 {
		t.Fatalf("table2: %v", err)
	}
	_ = expt.RenderTable2(t2)
	f4, err := expt.Fig4(ctx, cfg)
	if err != nil || len(f4) != len(expt.Fig4Sizes) {
		t.Fatalf("fig4: %v", err)
	}
	_ = expt.RenderFig4(f4)
	f5, err := expt.Fig5(ctx, cfg)
	if err != nil {
		t.Fatalf("fig5: %v", err)
	}
	for _, r := range f5 {
		if r.TPCFull < 1 {
			t.Fatalf("fig5 TPC < 1: %+v", r)
		}
	}
	_ = expt.RenderFig5(f5)
	f6, err := expt.Fig6(ctx, cfg)
	if err != nil {
		t.Fatalf("fig6: %v", err)
	}
	_ = expt.RenderFig6(f6)
	f7, err := expt.Fig7(ctx, cfg)
	if err != nil || len(f7) != 20 {
		t.Fatalf("fig7: %v (%d cells)", err, len(f7))
	}
	_ = expt.RenderFig7(f7)
	f8, avg, err := expt.Fig8(ctx, cfg)
	if err != nil || len(f8) != 2 {
		t.Fatalf("fig8: %v", err)
	}
	_ = expt.RenderFig8(f8, avg)
}

// TestAblationSubset exercises the ablation drivers.
func TestAblationSubset(t *testing.T) {
	ctx := context.Background()
	cfg := expt.Config{Budget: 100_000, Benchmarks: []string{"m88ksim"}}
	if rows, err := expt.AblationCLSSize(ctx, cfg, []int{2, 16}); err != nil || len(rows) != 2 {
		t.Fatalf("cls size: %v", err)
	}
	if rows, err := expt.AblationLETCapacity(ctx, cfg, []int{2, 0}); err != nil || len(rows) != 2 {
		t.Fatalf("let capacity: %v", err)
	}
	if rows, err := expt.AblationReplacement(ctx, cfg, []int{2}); err != nil || len(rows) != 1 {
		t.Fatalf("replacement: %v", err)
	}
	if rows, err := expt.AblationOneShots(ctx, cfg); err != nil || len(rows) != 1 {
		t.Fatalf("one shots: %v", err)
	}
	if rows, err := expt.AblationNestRule(ctx, cfg, []int{4}); err != nil || len(rows) != 2 {
		t.Fatalf("nest rule: %v", err)
	}
}

// TestInfiniteBeatsFinite: on every workload, the unlimited machine must
// dominate the 16-TU machine which must dominate the 2-TU machine.
func TestInfiniteBeatsFinite(t *testing.T) {
	for _, name := range []string{"swim", "compress", "gcc"} {
		bm, err := dynloop.BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tpc := func(tus int) float64 {
			u, err := bm.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			e := dynloop.NewEngine(dynloop.EngineConfig{TUs: tus, Policy: dynloop.Idle()})
			if _, err := dynloop.Run(u, dynloop.RunConfig{Budget: 400_000}, e); err != nil {
				t.Fatal(err)
			}
			return e.Metrics().TPC()
		}
		inf, big, small := tpc(0), tpc(16), tpc(2)
		if !(inf >= big && big >= small-1e-9) {
			t.Fatalf("%s: TPC ordering broken: inf=%.2f 16=%.2f 2=%.2f", name, inf, big, small)
		}
	}
}

// TestStaticNestRule checks the alternative STR(i) interpretation is
// wired through and behaves: with the literal structural rule, a
// speculated outer loop above a deep nest is squashed even when the
// inner loops want nothing.
func TestStaticNestRule(t *testing.T) {
	bm, err := dynloop.BenchmarkByName("fpppp")
	if err != nil {
		t.Fatal(err)
	}
	run := func(rule spec.NestRule) spec.Metrics {
		u, err := bm.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		e := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STRn(3), NestRule: rule})
		if _, err := dynloop.Run(u, dynloop.RunConfig{Budget: 800_000}, e); err != nil {
			t.Fatal(err)
		}
		return e.Metrics()
	}
	starve := run(spec.NestRuleStarvation)
	static := run(spec.NestRuleStatic)
	// fpppp is exactly the case that separates the readings: the static
	// rule keeps squashing the coarse threads above its deep tiny nests.
	if static.ThreadsSquashed <= starve.ThreadsSquashed {
		t.Fatalf("static rule should squash more on fpppp: static=%d starvation=%d",
			static.ThreadsSquashed, starve.ThreadsSquashed)
	}
	if static.TPC() >= starve.TPC() {
		t.Fatalf("static rule should cost TPC on fpppp: static=%.2f starvation=%.2f",
			static.TPC(), starve.TPC())
	}
}

// TestTracesLocalRemoteByteIdentical is the replay tier's integration
// leg: the same sweep rendered (a) locally by the interpreter, (b)
// locally replayed from a trace archive, and (c) remotely by a daemon
// whose runner is backed by that archive, must be byte-identical — the
// scripted counterpart is scripts/replay_smoke.sh.
func TestTracesLocalRemoteByteIdentical(t *testing.T) {
	ctx := context.Background()
	req := wire.SweepRequest{
		Benchmarks: []string{"swim", "compress"},
		Policies:   []string{"str", "str3"},
		TUs:        []int{2, 4},
		Budget:     50_000,
	}
	pols, err := expt.ParsePolicies(req.Policies)
	if err != nil {
		t.Fatal(err)
	}
	sweepSpec := expt.SweepSpec{Policies: pols, TUs: req.TUs}

	// (a) Interpreted reference.
	cfg := expt.Config{Budget: req.Budget, Benchmarks: req.Benchmarks, Parallel: 2}
	rows, err := expt.Sweep(ctx, cfg, sweepSpec)
	if err != nil {
		t.Fatal(err)
	}
	want := expt.RenderSweep(rows)

	// (b) Locally traced: the first sweep records, the second replays;
	// both render the reference bytes.
	tr := newTraces(t)
	cfg.Traces = tr
	for pass := 0; pass < 2; pass++ {
		rows, err := expt.Sweep(ctx, cfg, sweepSpec)
		if err != nil {
			t.Fatalf("traced pass %d: %v", pass, err)
		}
		if got := expt.RenderSweep(rows); got != want {
			t.Fatalf("traced pass %d render differs:\n%s\nwant:\n%s", pass, got, want)
		}
	}
	if st := tr.Stats(); st.Records == 0 || st.Replays == 0 {
		t.Fatalf("local trace tier never engaged: %+v", st)
	}

	// (c) Remote: a daemon over the same (now warm) archive serves the
	// sweep from replay alone and renders the reference bytes.
	s := server.New(server.Config{Workers: 4, Traces: tr})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := client.New(hs.URL, hs.Client())
	remoteRows, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := expt.RenderSweep(remoteRows); got != want {
		t.Fatalf("remote render differs:\n%s\nwant:\n%s", got, want)
	}
	st := s.Runner().Stats()
	if st.ReplayRuns == 0 || st.RecordRuns != 0 {
		t.Fatalf("daemon did not serve from replay alone: %+v", st)
	}
}
