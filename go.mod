module dynloop

go 1.22
