package dynloop_test

import (
	"context"
	"fmt"
	"strings"

	"dynloop"
)

// ExampleRun drives the front-page pipeline: build a workload, run it
// through the loop detector with a statistics collector attached, and
// read the Table-1 quantities back. Everything is seeded, so the run is
// deterministic.
func ExampleRun() {
	bm, err := dynloop.BenchmarkByName("swim")
	if err != nil {
		panic(err)
	}
	unit, err := bm.Build(1)
	if err != nil {
		panic(err)
	}
	stats := dynloop.NewLoopStats()
	res, err := dynloop.Run(unit, dynloop.RunConfig{Budget: 100_000}, stats)
	if err != nil {
		panic(err)
	}
	s := stats.Summary()
	fmt.Println("executed:", res.Executed)
	fmt.Println("loops detected:", s.StaticLoops > 0)
	fmt.Println("iterations seen:", s.Iters > 0)
	// Output:
	// executed: 100000
	// loops detected: true
	// iterations seen: true
}

// ExampleNewEngine attaches the §3 thread-speculation engine as a run
// observer and reads the paper's headline metric (TPC — threads per
// cycle) from it. With 4 thread units, TPC lands in [1, 4] by
// construction.
func ExampleNewEngine() {
	bm, err := dynloop.BenchmarkByName("compress")
	if err != nil {
		panic(err)
	}
	unit, err := bm.Build(1)
	if err != nil {
		panic(err)
	}
	engine := dynloop.NewEngine(dynloop.EngineConfig{TUs: 4, Policy: dynloop.STRn(3)})
	if _, err := dynloop.Run(unit, dynloop.RunConfig{Budget: 200_000}, engine); err != nil {
		panic(err)
	}
	m := engine.Metrics()
	fmt.Println("TPC in [1,4]:", m.TPC() >= 1 && m.TPC() <= 4)
	fmt.Println("speculated:", m.ThreadsSpawned > 0)
	fmt.Println("anomalies:", m.Anomalies)
	// Output:
	// TPC in [1,4]: true
	// speculated: true
	// anomalies: 0
}

// ExampleMultiRun fuses several independent analyses into a single
// traversal of one benchmark's instruction stream: a Table-1 statistics
// pass, two speculation engines at different machine sizes, and the
// raw-stream branch-prediction baseline. Each pass owns its own
// detector, so the results are identical to four separate Run calls —
// for the price of one interpretation.
func ExampleMultiRun() {
	bm, err := dynloop.BenchmarkByName("swim")
	if err != nil {
		panic(err)
	}
	unit, err := bm.Build(1)
	if err != nil {
		panic(err)
	}
	stats := dynloop.NewLoopStats()
	small := dynloop.NewEngine(dynloop.EngineConfig{TUs: 2, Policy: dynloop.STR()})
	large := dynloop.NewEngine(dynloop.EngineConfig{TUs: 8, Policy: dynloop.STR()})
	suite := dynloop.NewBranchPredictorSuite()
	res, err := dynloop.MultiRun(unit, dynloop.MultiRunConfig{Budget: 100_000},
		dynloop.NewObserverPass(0, stats),
		dynloop.NewObserverPass(0, small),
		dynloop.NewObserverPass(0, large),
		suite,
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("executed:", res.Executed)
	fmt.Println("loops detected:", stats.Summary().StaticLoops > 0)
	fmt.Println("more TUs never hurt:", large.Metrics().TPC() >= small.Metrics().TPC())
	fmt.Println("branch baseline scored:", suite.Results()[0].Branches > 0)
	// Output:
	// executed: 100000
	// loops detected: true
	// more TUs never hurt: true
	// branch baseline scored: true
}

// ExampleRunAll regenerates the paper's full evaluation — every table,
// figure, baseline and ablation — through the parallel orchestrator. A
// subset and a small budget keep the example quick; the report is
// byte-identical at any Parallel setting.
func ExampleRunAll() {
	cfg := dynloop.ExperimentConfig{
		Budget:     50_000,
		Benchmarks: []string{"swim"},
		Parallel:   4,
	}
	report, err := dynloop.RunAll(context.Background(), cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("has Table 1:", strings.Contains(report, "Table 1"))
	fmt.Println("has Figure 7:", strings.Contains(report, "Figure 7"))
	fmt.Println("has ablations:", strings.Contains(report, "oracle"))
	// Output:
	// has Table 1: true
	// has Figure 7: true
	// has ablations: true
}

// ExampleRunGrid executes a declarative grid spec — here a seed sweep
// at a machine size the paper never ran — through the same fusion,
// caching and rendering machinery the registered paper sections use.
func ExampleRunGrid() {
	spec := dynloop.GridSpec{
		Kind:       "spec",
		Benchmarks: []string{"swim"},
		Seeds:      []uint64{1, 2},
		TUs:        []int{6},
		Policies:   []string{"str"},
	}
	res, err := dynloop.RunGrid(context.Background(), dynloop.ExperimentConfig{Budget: 50_000, Parallel: 4}, spec)
	if err != nil {
		panic(err)
	}
	out, err := dynloop.RenderGrid(res)
	if err != nil {
		panic(err)
	}
	fmt.Println("cells:", len(res.Values))
	fmt.Println("has seed column:", strings.Contains(out, "seed"))
	fmt.Println("registered sections:", len(dynloop.GridNames()) > 10)
	// Output:
	// cells: 2
	// has seed column: true
	// registered sections: true
}
