// Quickstart: build a tiny program with the structured builder, run it
// through the dynamic loop detector, and print every loop event the CLS
// mechanism reports — detection at the second iteration, iteration
// boundaries, and execution ends with their reasons.
package main

import (
	"fmt"
	"log"

	"dynloop"
	"dynloop/internal/builder"
	"dynloop/internal/isa"
	"dynloop/internal/loopdet"
)

// printer logs loop events as they happen.
type printer struct{ loopdet.NopObserver }

func (printer) ExecStart(x *dynloop.Exec) {
	fmt.Printf("  exec start:  loop @%d (body ends @%d)\n", x.T, x.B)
}

func (printer) IterStart(x *dynloop.Exec, index uint64) {
	fmt.Printf("  iteration %d of loop @%d begins (instruction %d)\n", x.Iters, x.T, index+1)
}

func (printer) ExecEnd(x *dynloop.Exec, reason dynloop.EndReason, index uint64) {
	fmt.Printf("  exec end:    loop @%d after %d iterations (%s)\n", x.T, x.Iters, reason)
}

func (printer) OneShot(t, b isa.Addr, index uint64) {
	fmt.Printf("  one-shot:    loop @%d executed a single iteration\n", t)
}

func main() {
	// A 3-iteration loop nested in a 2-iteration loop, then a loop that
	// ends early through a break.
	b := dynloop.NewProgram("quickstart", 1)
	b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() {
		b.Work(3)
		b.CountedLoop(builder.TripImm(3), builder.LoopOpt{}, func() {
			b.Work(2)
		})
	})
	stop := b.BernoulliSeq(0.5)
	b.CountedLoop(builder.TripImm(10), builder.LoopOpt{}, func() {
		b.Work(2)
		b.BreakIfSeq(stop)
	})
	unit, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("program:")
	fmt.Println("  2-trip outer loop containing a 3-trip inner loop,")
	fmt.Println("  then a 10-trip loop with a coin-flip break.")
	fmt.Println()
	fmt.Println("loop events detected by the CLS:")
	res, err := dynloop.Run(unit, dynloop.RunConfig{}, printer{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d instructions executed; CLS empty at exit: %v\n",
		res.Executed, res.Detector.Depth() == 0)
	fmt.Println("\nNote the paper's detection rule at work: each loop is only")
	fmt.Println("discovered when its SECOND iteration starts, so single-pass")
	fmt.Println("(one-shot) executions never enter the stack.")
}
