// Tracereplay: record an instruction trace once (the ATOM methodology of
// the paper), then replay the file through differently-sized LET/LIT
// configurations without re-executing the program — the way one actually
// sweeps hardware parameters over a fixed trace.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dynloop"
	"dynloop/internal/report"
)

func main() {
	bm, err := dynloop.BenchmarkByName("gcc")
	if err != nil {
		log.Fatal(err)
	}
	unit, err := bm.Build(1)
	if err != nil {
		log.Fatal(err)
	}

	// Record: one execution, one trace.
	var buf bytes.Buffer
	w, err := dynloop.NewTraceWriter(&buf, unit.Prog)
	if err != nil {
		log.Fatal(err)
	}
	cpu := unit.NewCPU()
	n, err := cpu.Run(1_000_000, w)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d instructions of gcc: %d bytes (%.1f bits/instr)\n\n",
		n, buf.Len(), float64(buf.Len())*8/float64(n))

	// Replay: sweep the table sizes over the SAME trace.
	t := report.NewTable("LET/LIT hit ratios swept over one recorded trace",
		"entries", "LET hit %", "LIT hit %")
	for _, size := range []int{16, 8, 4, 2} {
		r, err := dynloop.NewTraceReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			log.Fatal(err)
		}
		det := dynloop.NewDetector(dynloop.DetectorConfig{Capacity: 16})
		tracker := dynloop.NewTableTracker(size, size)
		det.AddObserver(tracker)
		if _, err := r.Replay(det); err != nil {
			log.Fatal(err)
		}
		det.Flush()
		let, _ := tracker.LET.HitRatio()
		lit, _ := tracker.LIT.HitRatio()
		t.AddRow(size, 100*let, 100*lit)
	}
	fmt.Print(t.String())
	fmt.Println("\nEvery row came from the same file — deterministic replay makes")
	fmt.Println("hardware-parameter sweeps exactly repeatable (the paper's Figure 4")
	fmt.Println("methodology).")
}
