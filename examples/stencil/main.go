// Stencil: run the pipeline on a tomcatv-like regular mesh kernel and
// show why vector codes are the paper's best case — near-perfect LET/LIT
// hit ratios and a TPC close to the machine width.
package main

import (
	"fmt"
	"log"

	"dynloop"
	"dynloop/internal/builder"
	"dynloop/internal/report"
)

func buildMesh() (*dynloop.Unit, error) {
	b := dynloop.NewProgram("mesh", 42)
	b.MovI(24, builder.HeapBase)
	// Two mesh sweeps per "time step": 32 rows x 48 columns, constant
	// trips, affine memory walks — the shape of tomcatv/swim.
	sweep := b.Func("sweep", func() {
		b.CountedLoop(builder.TripImm(32), builder.LoopOpt{}, func() {
			b.CountedLoop(builder.TripImm(48), builder.LoopOpt{}, func() {
				b.LoadAt(20, 24, 0)
				b.Work(30)
				b.StoreAt(24, 1, 16)
			})
			b.Advance(24, 64)
		})
	})
	for i := 0; i < 24; i++ { // time steps, inlined (no driver loop)
		b.Call(sweep)
		b.Call(sweep)
	}
	return b.Build()
}

func main() {
	unit, err := buildMesh()
	if err != nil {
		log.Fatal(err)
	}

	// One run, all the paper's instruments attached at once.
	stats := dynloop.NewLoopStats()
	tables := dynloop.NewTableTracker(16, 4) // the paper's preferred sizes
	data := dynloop.NewDataStats()
	engines := map[int]*dynloop.Engine{}
	var observers []dynloop.Observer
	observers = append(observers, stats, tables, data)
	for _, tus := range []int{2, 4, 8} {
		e := dynloop.NewEngine(dynloop.EngineConfig{TUs: tus, Policy: dynloop.STR()})
		engines[tus] = e
		observers = append(observers, e)
	}
	res, err := dynloop.Run(unit, dynloop.RunConfig{}, observers...)
	if err != nil {
		log.Fatal(err)
	}

	s := stats.Summary()
	t := report.NewTable(fmt.Sprintf("mesh kernel: %d instructions", res.Executed),
		"metric", "value")
	t.AddRow("static loops", s.StaticLoops)
	t.AddRow("iterations/execution", s.ItersPerExec)
	t.AddRow("instructions/iteration", s.InstrPerIter)
	t.AddRow("max nesting", s.MaxNesting)
	let, _ := tables.LET.HitRatio()
	lit, _ := tables.LIT.HitRatio()
	t.AddRow("LET hit % (16 entries)", 100*let)
	t.AddRow("LIT hit % (4 entries)", 100*lit)
	d := data.Summary()
	t.AddRow("same-path iterations %", d.SamePathPct)
	t.AddRow("live-in regs predicted %", d.LrPredPct)
	t.AddRow("live-in mem predicted %", d.LmPredPct)
	fmt.Print(t.String())

	fmt.Println()
	t2 := report.NewTable("thread-level parallelism under STR", "TUs", "TPC", "hit %")
	for _, tus := range []int{2, 4, 8} {
		m := engines[tus].Metrics()
		t2.AddRow(tus, m.TPC(), m.HitRatio())
	}
	fmt.Print(t2.String())
	fmt.Println("\nConstant trip counts make the stride predictor exact, so almost")
	fmt.Println("every speculated iteration is confirmed — the regular-FP story of")
	fmt.Println("the paper's Table 2 (swim, tomcatv, wave5).")
}
