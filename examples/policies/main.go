// Policies: compare IDLE, STR and STR(i) on one workload whose structure
// makes the difference visible — a coarse outer loop over deep kernels
// with predictable inner loops. IDLE over-speculates past execution
// boundaries; STR stops at the predicted boundary; STR(i) additionally
// squashes coarse outer threads when too many inner loops starve.
package main

import (
	"fmt"
	"log"

	"dynloop"
	"dynloop/internal/builder"
	"dynloop/internal/report"
)

func buildWorkload() (*dynloop.Unit, error) {
	b := dynloop.NewProgram("policies", 9)
	// A kernel with a 4-deep nest of small loops under a long vector
	// loop: inner loops want TUs, and a coarse outer thread that holds
	// them starves the nest.
	kernel := b.Func("kernel", func() {
		b.CountedLoop(builder.TripImm(3), builder.LoopOpt{}, func() {
			b.Work(40)
			b.CountedLoop(builder.TripImm(3), builder.LoopOpt{}, func() {
				b.Work(30)
				b.CountedLoop(builder.TripImm(4), builder.LoopOpt{}, func() {
					b.CountedLoop(builder.TripImm(24), builder.LoopOpt{}, func() {
						b.Work(18)
					})
				})
			})
		})
	})
	// The coarse driver: an endless transaction loop.
	b.CountedLoop(builder.TripImm(1<<40), builder.LoopOpt{}, func() {
		b.Work(120)
		b.Call(kernel)
	})
	return b.Build()
}

func main() {
	policies := []dynloop.Policy{
		dynloop.Idle(), dynloop.STR(),
		dynloop.STRn(1), dynloop.STRn(2), dynloop.STRn(3),
	}
	t := report.NewTable("policy comparison (4 TUs, 2M instructions)",
		"policy", "TPC", "hit %", "spawned", "squashed", "instr-to-verif")
	for _, pol := range policies {
		unit, err := buildWorkload()
		if err != nil {
			log.Fatal(err)
		}
		e := dynloop.NewEngine(dynloop.EngineConfig{TUs: 4, Policy: pol})
		if _, err := dynloop.Run(unit, dynloop.RunConfig{Budget: 2_000_000}, e); err != nil {
			log.Fatal(err)
		}
		m := e.Metrics()
		t.AddRow(pol.String(), m.TPC(), m.HitRatio(), m.ThreadsSpawned, m.ThreadsSquashed, m.InstrToVerif())
	}
	fmt.Print(t.String())
	fmt.Println("\nReading the table like the paper's Figure 7: STR improves on IDLE by")
	fmt.Println("not speculating past predicted loop ends; STR(i) trades some correct")
	fmt.Println("coarse threads (lower TPC here) for freeing TUs to the inner loops —")
	fmt.Println("the trade the paper argues pays off once data dependences matter.")
}
