// Interpreter: run the pipeline on the li-like recursive interpreter
// workload and show the paper's hard case — the recursion-merging rule
// (§2.2) keeps killing the dispatch loop's executions, so speculation is
// squashed constantly and TPC stays near 1.
package main

import (
	"fmt"
	"log"

	"dynloop"
	"dynloop/internal/loopdet"
	"dynloop/internal/report"
)

// endCounter tallies why executions die.
type endCounter struct {
	loopdet.NopObserver
	reasons map[dynloop.EndReason]int
}

func (c *endCounter) ExecEnd(x *dynloop.Exec, reason dynloop.EndReason, index uint64) {
	c.reasons[reason]++
}

func main() {
	bm, err := dynloop.BenchmarkByName("li")
	if err != nil {
		log.Fatal(err)
	}
	unit, err := bm.Build(1)
	if err != nil {
		log.Fatal(err)
	}

	stats := dynloop.NewLoopStats()
	ends := &endCounter{reasons: make(map[dynloop.EndReason]int)}
	engine := dynloop.NewEngine(dynloop.EngineConfig{TUs: 4, Policy: dynloop.STRn(3)})
	res, err := dynloop.Run(unit, dynloop.RunConfig{Budget: 2_000_000}, stats, ends, engine)
	if err != nil {
		log.Fatal(err)
	}

	s := stats.Summary()
	m := engine.Metrics()
	t := report.NewTable(fmt.Sprintf("li (lisp interpreter): %d instructions", res.Executed),
		"metric", "value", "paper")
	t.AddRow("iterations/execution", s.ItersPerExec, bm.Paper.ItersPerExec)
	t.AddRow("TPC (STR(3), 4 TUs)", m.TPC(), bm.Paper.TPC4)
	t.AddRow("speculation hit %", m.HitRatio(), bm.Paper.HitRatio)
	fmt.Print(t.String())

	fmt.Println()
	t2 := report.NewTable("why executions die", "reason", "count")
	for _, r := range []dynloop.EndReason{
		loopdet.EndBackEdge, loopdet.EndExit, loopdet.EndReturn,
		loopdet.EndOuter, loopdet.EndFlush,
	} {
		t2.AddRow(r.String(), ends.reasons[r])
	}
	fmt.Print(t2.String())

	fmt.Println("\nThe 'return' row is the interpreter signature: the eval loop is")
	fmt.Println("re-entered recursively, the CLS merges the instantiations, and the")
	fmt.Println("return that unwinds the recursion terminates the merged execution —")
	fmt.Println("squashing whatever speculation was outstanding on it. That is why")
	fmt.Println("li/perl/go sit at the bottom of the paper's Table 2.")
}
