// Differential fuzzing of the interpreter core: arbitrary (bounded)
// programs must execute identically on the predecoded+fused fast path
// and the reference two-level interpreter — same event stream, same
// machine state, same error — and any stream the fast path emits must
// survive a trace-archive record/replay round trip event for event.
package dynloop_test

import (
	"reflect"
	"testing"

	"dynloop/internal/interp"
	"dynloop/internal/isa"
	"dynloop/internal/program"
	"dynloop/internal/trace"
	"dynloop/internal/tracefile"
)

// fuzzProgram decodes fuzz bytes into an in-range program: registers
// and sequence IDs are taken mod their file sizes and control targets
// mod the final code length, so the only machine checks reachable are
// the ones both interpreter paths must agree on (call depth, ret on an
// empty stack, running off the end). A trailing halt bounds the common
// case; a budget cap in the caller bounds the loops.
func fuzzProgram(data []byte) *program.Program {
	const maxLen = 96
	var code []isa.Instr
	for i := 0; i+2 < len(data) && len(code) < maxLen; i += 3 {
		sel, a, b := data[i], data[i+1], data[i+2]
		rd := isa.Reg(a % isa.NumRegs)
		rs := isa.Reg(b % isa.NumRegs)
		// Immediates sweep the codec's width classes: a signed byte
		// shifted by 0..56 bits.
		imm := int64(int8(b)) << (uint(a>>2) % 57)
		switch sel % 13 {
		case 0:
			ops := []isa.ALUOp{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd,
				isa.OpOr, isa.OpXor, isa.OpSlt, isa.OpMod}
			code = append(code, isa.ALU(ops[a%8], rd, rs, isa.Reg(a%isa.NumRegs)))
		case 1:
			code = append(code, isa.AddI(rd, rs, imm))
		case 2:
			code = append(code, isa.MovI(rd, imm))
		case 3:
			code = append(code, isa.Mov(rd, rs))
		case 4:
			code = append(code, isa.Load(rd, rs, int64(a%64)*8))
		case 5:
			code = append(code, isa.Store(rd, int64(a%64)*8, rs))
		case 6:
			conds := []isa.Cond{isa.CondEQZ, isa.CondNEZ, isa.CondLTZ,
				isa.CondGEZ, isa.CondGTZ, isa.CondLEZ}
			code = append(code, isa.Branch(conds[a%6], rs, isa.Addr(b))) // target fixed below
		case 7:
			code = append(code, isa.Jump(isa.Addr(b)))
		case 8:
			code = append(code, isa.Call(isa.Addr(b)))
		case 9:
			code = append(code, isa.Ret())
		case 10:
			code = append(code, isa.Seq(rd, int64(a%4)))
		case 11:
			code = append(code, isa.Nop())
		case 12:
			code = append(code, isa.Halt())
		}
	}
	code = append(code, isa.Halt())
	n := isa.Addr(len(code))
	for i := range code {
		if code[i].Kind.IsControl() && code[i].Kind != isa.KindRet {
			code[i].Target %= n
		}
	}
	return &program.Program{Name: "fuzz", Code: code}
}

// ctlCapture is a control-plane-only sink: it records CtlEvents and
// panics if the producer falls back to full-Event delivery, so a test
// passing proves the run actually took the ctl loop.
type ctlCapture struct {
	events []trace.CtlEvent
}

func (c *ctlCapture) ConsumeBatch([]trace.Event) {
	panic("ctlCapture: full-plane batch delivered to a ctl-only sink")
}

func (c *ctlCapture) ConsumeCtlBatch(evs []trace.CtlEvent, ctl []int32) {
	c.events = append(c.events, evs...)
}

func newFuzzCPU(p *program.Program, reference bool) *interp.CPU {
	c := interp.New(p)
	c.SetReference(reference)
	for id := int64(0); id < 4; id++ {
		c.BindSeq(id, interp.Counter(id*7+1, id+1))
	}
	return c
}

func FuzzPredecode(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{2, 1, 5, 1, 2, 255, 6, 0, 0}, uint8(1)) // movi, addi, branch
	f.Add([]byte{2, 3, 16, 5, 3, 1, 4, 3, 1}, uint8(3))  // movi, store, load
	f.Add([]byte{8, 0, 4, 12, 0, 0, 9, 0, 0}, uint8(2))  // call over a halt, ret
	f.Add([]byte{10, 1, 0, 10, 2, 1, 7, 0, 0}, uint8(7)) // seqs and a jump
	f.Fuzz(func(t *testing.T, data []byte, bsel uint8) {
		p := fuzzProgram(data)
		batch := []int{0, 1, 3, 256}[bsel%4]
		const budget = 2000

		fused := newFuzzCPU(p, false)
		fused.SetBatchSize(batch)
		frec := &trace.Recorder{}
		fn, ferr := fused.Run(budget, frec)

		ref := newFuzzCPU(p, true)
		ref.SetBatchSize(batch)
		rrec := &trace.Recorder{}
		rn, rerr := ref.Run(budget, rrec)

		if (ferr == nil) != (rerr == nil) || (ferr != nil && ferr.Error() != rerr.Error()) {
			t.Fatalf("errors diverged: fused %v, reference %v", ferr, rerr)
		}
		if fn != rn {
			t.Fatalf("retired %d fused vs %d reference", fn, rn)
		}
		if !reflect.DeepEqual(frec.Events, rrec.Events) {
			t.Fatalf("streams diverged after %d events", fn)
		}
		if fused.PC() != ref.PC() || fused.Halted() != ref.Halted() {
			t.Fatalf("machine state diverged: pc %d/%d halted %v/%v",
				fused.PC(), ref.PC(), fused.Halted(), ref.Halted())
		}

		// Control-plane leg: a ctl-only sink runs the dedicated ctl loop,
		// which must retire the exact control facet of the full stream
		// with identical machine state and error behaviour.
		ctlCPU := newFuzzCPU(p, false)
		ctlCPU.SetBatchSize(batch)
		crec := &ctlCapture{}
		cn, cerr := ctlCPU.Run(budget, crec)
		if (cerr == nil) != (ferr == nil) || (cerr != nil && cerr.Error() != ferr.Error()) {
			t.Fatalf("ctl errors diverged: ctl %v, full %v", cerr, ferr)
		}
		if cn != fn || ctlCPU.PC() != fused.PC() || ctlCPU.Halted() != fused.Halted() {
			t.Fatalf("ctl machine diverged: n %d/%d pc %d/%d halted %v/%v",
				cn, fn, ctlCPU.PC(), fused.PC(), ctlCPU.Halted(), fused.Halted())
		}
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if ctlCPU.Reg(r) != fused.Reg(r) {
				t.Fatalf("ctl r%d = %d, full %d", r, ctlCPU.Reg(r), fused.Reg(r))
			}
		}
		facet := make([]trace.CtlEvent, len(frec.Events))
		for i, ev := range frec.Events {
			facet[i] = trace.CtlEvent{Index: ev.Index, PC: ev.PC, Instr: ev.Instr,
				Taken: ev.Taken, Target: ev.Target}
		}
		if len(crec.events) != len(facet) {
			t.Fatalf("ctl stream has %d events, full facet %d", len(crec.events), len(facet))
		}
		for i := range facet {
			if crec.events[i] != facet[i] {
				t.Fatalf("ctl event %d = %+v, full facet %+v", i, crec.events[i], facet[i])
			}
		}

		// Replay leg: a clean run's stream must round-trip through the
		// archive codec byte for byte.
		if ferr != nil {
			return
		}
		a, err := tracefile.OpenArchive(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		rec, err := a.BeginRecord("fuzz", 1, p)
		if err != nil {
			t.Fatal(err)
		}
		rec.ConsumeBatch(frec.Events)
		if err := rec.Commit(fused.Halted()); err != nil {
			t.Fatal(err)
		}
		r, ok := a.Lookup("fuzz", 1)
		if !ok {
			t.Fatal("recording not installed")
		}
		prec := &trace.Recorder{}
		gotN, gotHalted, err := r.Replay(0, nil, prec)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if gotN != fn || gotHalted != fused.Halted() {
			t.Fatalf("replay n=%d halted=%v, want %d/%v", gotN, gotHalted, fn, fused.Halted())
		}
		if !reflect.DeepEqual(prec.Events, frec.Events) {
			t.Fatalf("replayed stream differs from live stream")
		}
	})
}
